package euler

import (
	"encoding/binary"
	"fmt"
)

// Binary encodings for path bodies (spill store payloads) and partition
// states (BSP merge transfers).  Varint framing keeps transfer byte counts
// proportional to the state's Long count, which is what the cost model
// charges for shuffle time.

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("euler: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("euler: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) done() error {
	if d.off != len(d.buf) {
		return fmt.Errorf("euler: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

// EncodeBody serialises a path/cycle body for the spill store.
func EncodeBody(items []Item) []byte {
	buf := make([]byte, 0, 1+4*len(items)*2)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = append(buf, byte(it.Kind))
		buf = binary.AppendVarint(buf, it.Ref)
		buf = binary.AppendVarint(buf, it.From)
		buf = binary.AppendVarint(buf, it.To)
	}
	return buf
}

// DecodeBody parses a body written by EncodeBody.
func DecodeBody(buf []byte) ([]Item, error) {
	d := &decoder{buf: buf}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	items := make([]Item, 0, n)
	for i := uint64(0); i < n; i++ {
		if d.off >= len(d.buf) {
			return nil, fmt.Errorf("euler: truncated item %d", i)
		}
		kind := ItemKind(d.buf[d.off])
		d.off++
		if kind != ItemEdge && kind != ItemPath {
			return nil, fmt.Errorf("euler: bad item kind %d", kind)
		}
		ref, err := d.varint()
		if err != nil {
			return nil, err
		}
		from, err := d.varint()
		if err != nil {
			return nil, err
		}
		to, err := d.varint()
		if err != nil {
			return nil, err
		}
		items = append(items, Item{Kind: kind, Ref: ref, From: from, To: to})
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return items, nil
}

// EncodeState serialises a PartState for transfer to a merge parent.
func EncodeState(s *PartState) []byte {
	buf := make([]byte, 0, 16+8*(len(s.Local)+len(s.Remote)+len(s.Stubs)))
	buf = binary.AppendUvarint(buf, uint64(s.Parent))
	buf = binary.AppendUvarint(buf, uint64(len(s.Leaves)))
	for _, l := range s.Leaves {
		buf = binary.AppendUvarint(buf, uint64(l))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Local)))
	for _, e := range s.Local {
		buf = append(buf, byte(e.Kind))
		buf = binary.AppendVarint(buf, e.U)
		buf = binary.AppendVarint(buf, e.V)
		buf = binary.AppendVarint(buf, e.Ref)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Remote)))
	for _, r := range s.Remote {
		buf = binary.AppendVarint(buf, r.Local)
		buf = binary.AppendVarint(buf, r.Remote)
		buf = binary.AppendVarint(buf, r.Edge)
		buf = binary.AppendVarint(buf, int64(r.ConvertLevel))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Stubs)))
	for _, st := range s.Stubs {
		buf = binary.AppendVarint(buf, st.Vertex)
		buf = binary.AppendVarint(buf, int64(st.ConvertLevel))
		buf = binary.AppendVarint(buf, st.Count)
	}
	return buf
}

// DecodeState parses a PartState written by EncodeState.
func DecodeState(buf []byte) (*PartState, error) {
	d := &decoder{buf: buf}
	s := &PartState{}
	parent, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	s.Parent = int(parent)
	nl, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nl; i++ {
		l, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		s.Leaves = append(s.Leaves, int(l))
	}
	ne, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ne > 0 {
		s.Local = make([]CoarseEdge, 0, ne)
	}
	for i := uint64(0); i < ne; i++ {
		if d.off >= len(d.buf) {
			return nil, fmt.Errorf("euler: truncated local edge %d", i)
		}
		kind := ItemKind(d.buf[d.off])
		d.off++
		u, err := d.varint()
		if err != nil {
			return nil, err
		}
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		ref, err := d.varint()
		if err != nil {
			return nil, err
		}
		s.Local = append(s.Local, CoarseEdge{U: u, V: v, Kind: kind, Ref: ref})
	}
	nr, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nr > 0 {
		s.Remote = make([]RemoteEdge, 0, nr)
	}
	for i := uint64(0); i < nr; i++ {
		local, err := d.varint()
		if err != nil {
			return nil, err
		}
		remote, err := d.varint()
		if err != nil {
			return nil, err
		}
		edge, err := d.varint()
		if err != nil {
			return nil, err
		}
		lvl, err := d.varint()
		if err != nil {
			return nil, err
		}
		s.Remote = append(s.Remote, RemoteEdge{
			Local: local, Remote: remote, Edge: edge, ConvertLevel: int32(lvl),
		})
	}
	ns, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ns; i++ {
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		lvl, err := d.varint()
		if err != nil {
			return nil, err
		}
		count, err := d.varint()
		if err != nil {
			return nil, err
		}
		s.Stubs = append(s.Stubs, Stub{Vertex: v, ConvertLevel: int32(lvl), Count: count})
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodeRemoteBatch serialises a parked remote-edge delivery (deferred
// transfer mode).
func EncodeRemoteBatch(edges []RemoteEdge) []byte {
	buf := make([]byte, 0, 4+8*len(edges))
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for _, r := range edges {
		buf = binary.AppendVarint(buf, r.Local)
		buf = binary.AppendVarint(buf, r.Remote)
		buf = binary.AppendVarint(buf, r.Edge)
		buf = binary.AppendVarint(buf, int64(r.ConvertLevel))
	}
	return buf
}

// DecodeRemoteBatch parses a batch written by EncodeRemoteBatch.
func DecodeRemoteBatch(buf []byte) ([]RemoteEdge, error) {
	d := &decoder{buf: buf}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	edges := make([]RemoteEdge, 0, n)
	for i := uint64(0); i < n; i++ {
		local, err := d.varint()
		if err != nil {
			return nil, err
		}
		remote, err := d.varint()
		if err != nil {
			return nil, err
		}
		edge, err := d.varint()
		if err != nil {
			return nil, err
		}
		lvl, err := d.varint()
		if err != nil {
			return nil, err
		}
		edges = append(edges, RemoteEdge{
			Local: local, Remote: remote, Edge: edge, ConvertLevel: int32(lvl),
		})
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return edges, nil
}

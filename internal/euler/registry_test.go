package euler

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/spill"
)

// TestRegistryConcurrentAbsorbIsVisited exercises the lock-free registry
// the way a superstep does: every worker absorbs its own results (disjoint
// PathIDs and vertex ranges) while all workers hammer IsVisited.  Run
// under -race this pins the atomic bitset and the per-worker shards.
func TestRegistryConcurrentAbsorbIsVisited(t *testing.T) {
	const (
		workers  = 8
		perLevel = 50
		levels   = 4
		vertsPer = 1000
	)
	numV := int64(workers * vertsPer)
	reg := NewRegistry(spill.NewMemStore(), numV, workers)

	for level := 0; level < levels; level++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w, level int) {
				defer wg.Done()
				res := &Phase1Result{}
				base := int64(w * vertsPer)
				for s := 0; s < perLevel; s++ {
					id := MakePathID(level, w, int64(s))
					res.Recs = append(res.Recs, PathRec{
						ID: id, Type: IVCycle,
						Src: base + int64(s), Dst: base + int64(s),
						Level: level, Part: w,
					})
					res.Visited = append(res.Visited, base+int64(level*perLevel+s))
				}
				if err := reg.Absorb(w, res, false); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				// Concurrent reads over the whole vertex space, including
				// ranges other workers are writing right now.
				for v := int64(0); v < numV; v += 37 {
					reg.IsVisited(v)
				}
			}(w, level)
		}
		wg.Wait()
	}

	if err := reg.Seal(); err != nil {
		t.Fatal(err)
	}
	if got, want := reg.NumPaths(), workers*perLevel*levels; got != want {
		t.Fatalf("NumPaths = %d, want %d", got, want)
	}
	for w := 0; w < workers; w++ {
		for level := 0; level < levels; level++ {
			for s := 0; s < perLevel; s++ {
				id := MakePathID(level, w, int64(s))
				if _, ok := reg.Rec(id); !ok {
					t.Fatalf("rec %d missing after seal", id)
				}
				v := graph.VertexID(w*vertsPer + level*perLevel + s)
				if !reg.IsVisited(v) {
					t.Fatalf("vertex %d not visited", v)
				}
			}
		}
	}
	// Vertices no worker marked must stay unvisited.
	for w := 0; w < workers; w++ {
		v := graph.VertexID(w*vertsPer + levels*perLevel)
		if reg.IsVisited(v) {
			t.Fatalf("vertex %d spuriously visited", v)
		}
	}
}

// TestRegistryAnchoredOrderDeterministic absorbs cycles anchored at one
// vertex from several workers and levels and checks the sealed anchored
// list comes out in discovery (level, then worker) order.
func TestRegistryAnchoredOrderDeterministic(t *testing.T) {
	const pivot = graph.VertexID(5)
	reg := NewRegistry(spill.NewMemStore(), 10, 4)
	// Worker reps only grow across levels, so absorption order is
	// level-major with non-decreasing worker IDs per vertex.
	var want []PathID
	for level := 0; level < 3; level++ {
		w := level + 1 // rep grows as groups merge
		id := MakePathID(level, w, 0)
		res := &Phase1Result{Recs: []PathRec{{ID: id, Type: IVCycle, Src: pivot, Dst: pivot, Level: level, Part: w}}}
		if err := reg.Absorb(w, res, false); err != nil {
			t.Fatal(err)
		}
		want = append(want, id)
	}
	got := reg.AnchoredAt(pivot)
	if len(got) != len(want) {
		t.Fatalf("anchored %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("anchored[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestRegistrySealDuplicateID verifies duplicate PathIDs are still caught,
// now at Seal time instead of per-Absorb.
func TestRegistrySealDuplicateID(t *testing.T) {
	reg := NewRegistry(spill.NewMemStore(), 10, 2)
	rec := PathRec{ID: MakePathID(0, 0, 0), Type: IVCycle, Src: 1, Dst: 1}
	for w := 0; w < 2; w++ {
		if err := reg.Absorb(w, &Phase1Result{Recs: []PathRec{rec}}, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Seal(); err == nil {
		t.Fatal("duplicate path ID not detected at seal")
	}
	// Seal is idempotent, including its error.
	if err := reg.Seal(); err == nil {
		t.Fatal("second Seal lost the duplicate error")
	}
	// A registry that cannot seal must refuse to checkpoint rather than
	// silently writing an empty pathMap.
	var buf bytes.Buffer
	if err := reg.Save(&buf); err == nil {
		t.Fatal("Save of unsealable registry succeeded")
	}
}

// TestRegistryAbsorbAfterSeal verifies late absorbs are rejected instead of
// silently dropped from the sealed maps.
func TestRegistryAbsorbAfterSeal(t *testing.T) {
	reg := NewRegistry(spill.NewMemStore(), 10, 1)
	if err := reg.Seal(); err != nil {
		t.Fatal(err)
	}
	err := reg.Absorb(0, &Phase1Result{Recs: []PathRec{{ID: 1}}}, false)
	if err == nil {
		t.Fatal("absorb after seal accepted")
	}
}

// TestRegistryAbsorbCopiesResult verifies Absorb does not alias the
// result's slices: the driver reuses them as per-worker scratch.
func TestRegistryAbsorbCopiesResult(t *testing.T) {
	reg := NewRegistry(spill.NewMemStore(), 100, 1)
	res := &Phase1Result{
		Recs:    []PathRec{{ID: MakePathID(0, 0, 0), Type: IVCycle, Src: 3, Dst: 3}},
		Visited: []graph.VertexID{3},
		Seeds:   []PathID{MakePathID(0, 0, 0)},
	}
	if err := reg.Absorb(0, res, false); err != nil {
		t.Fatal(err)
	}
	// Clobber the result slices as a reusing worker would.
	res.Recs[0] = PathRec{ID: 999}
	res.Visited[0] = 99
	res.Seeds[0] = 999

	if err := reg.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Rec(MakePathID(0, 0, 0)); !ok {
		t.Fatal("rec lost after caller reused result slices")
	}
	if !reg.IsVisited(3) {
		t.Fatal("visited bit lost")
	}
	seeds := reg.Seeds()
	if len(seeds) != 1 || seeds[0] != MakePathID(0, 0, 0) {
		t.Fatalf("seeds = %v", seeds)
	}
}

// TestRegistryOutOfRangeWorker covers the shard bounds check.
func TestRegistryOutOfRangeWorker(t *testing.T) {
	reg := NewRegistry(spill.NewMemStore(), 10, 2)
	for _, w := range []int{-1, 2, 100} {
		if err := reg.Absorb(w, &Phase1Result{}, false); err == nil {
			t.Fatalf("worker %d accepted", w)
		}
	}
}

package euler

import "fmt"

// Facade-level run policy, shared by the single-process facade (repro's
// root package) and the cluster runner so the two paths cannot drift: a
// spec that relies on defaults must resolve identically wherever it runs,
// or the cluster's byte-identical guarantee breaks.

// DefaultParts is the partition count applied when a caller passes zero.
const DefaultParts = 4

// DefaultSeed is the partitioner seed applied when a caller passes zero.
const DefaultSeed = 1

// SpillLogName is the spill store's filename inside a run directory.
const SpillLogName = "euler-spill.log"

// ResolveParts applies the job-spec partition policy: zero (unset in a
// spec) means DefaultParts; the rest is ClampParts.
func ResolveParts(parts int32, numVertices int64) (int32, error) {
	if parts == 0 {
		parts = DefaultParts
	}
	return ClampParts(parts, numVertices)
}

// ClampParts rejects non-positive counts (the facade treats an explicit
// zero as invalid, unlike a spec's unset zero) and clamps to the vertex
// count.
func ClampParts(parts int32, numVertices int64) (int32, error) {
	if parts < 1 {
		return 0, fmt.Errorf("euler: partition count %d < 1", parts)
	}
	if int64(parts) > numVertices {
		parts = int32(numVertices)
	}
	return parts, nil
}

// ResolveSeed applies the partitioner-seed default.
func ResolveSeed(seed int64) int64 {
	if seed == 0 {
		return DefaultSeed
	}
	return seed
}

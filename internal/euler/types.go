// Package euler implements the paper's partition-centric distributed
// algorithm for identifying Euler circuits (Jaiswal & Simmhan, IPDPS
// Workshops 2019).
//
// The algorithm runs in three phases over a partitioned Eulerian graph:
//
//   - Phase 1 finds edge-disjoint maximal local paths between odd-degree
//     boundary vertices (OB), then maximal local cycles from even-degree
//     boundary vertices (EB) and internal vertices, concurrently in every
//     partition.  Each path is replaced by a single coarse "OB-pair" edge
//     and its body is spilled to disk, shrinking the in-memory state.
//   - Phase 2 merges partition pairs level by level along a merge tree
//     built by greedy maximum-weight matching over the partition
//     meta-graph; remote edges between a merged pair become local edges and
//     Phase 1 re-runs on the merged partition.
//   - Phase 3 unrolls the root cycle through the spilled bodies and the
//     anchored-cycle registry into the final Euler circuit.
//
// The package also implements the paper's Section 5 memory heuristics
// (remote-edge de-duplication and deferred remote-edge transfer) as
// selectable execution modes, with the Long-count memory accounting used by
// Fig. 8 and Fig. 9.
package euler

import (
	"fmt"

	"repro/internal/graph"
)

// PathID identifies a path or cycle found by Phase 1.  IDs are allocated
// deterministically as level<<40 | partition<<28 | (sequence+1), so runs
// are reproducible regardless of goroutine scheduling.  Zero is reserved as
// the "no path" sentinel.
type PathID = int64

// MakePathID composes a deterministic PathID; seq counts from 0 within one
// Phase 1 execution.
func MakePathID(level, part int, seq int64) PathID {
	return int64(level)<<40 | int64(part)<<28 | (seq + 1)
}

// ItemKind distinguishes the two element types of a path/cycle body.
type ItemKind uint8

const (
	// ItemEdge is an original graph edge.
	ItemEdge ItemKind = iota
	// ItemPath is a reference to a lower-level path (an OB-pair edge that
	// was traversed as a single coarse edge).
	ItemPath
)

// Item is one oriented element of a path or cycle body: traversal runs
// From → To.  For ItemEdge, Ref is the graph.EdgeID; for ItemPath it is the
// referenced PathID, whose own body runs Src→Dst and is unrolled reversed
// when From equals its Dst.
type Item struct {
	Kind     ItemKind
	Ref      int64
	From, To graph.VertexID
}

// PathType classifies pathMap entries, mirroring the paper's OB path / EB
// cycle / internal-vertex cycle taxonomy.
type PathType uint8

const (
	// OBPath is a maximal local path between two odd-degree boundary
	// vertices; it becomes a coarse OB-pair edge at the next level.
	OBPath PathType = iota
	// EBCycle is a maximal local cycle anchored at an even-degree boundary
	// vertex.
	EBCycle
	// IVCycle is a maximal local cycle anchored at an internal (or
	// previously visited) vertex; the paper merges these into a host entry
	// at a pivot vertex, which we realise by anchoring them at that pivot
	// and splicing during Phase 3 (see DESIGN.md).
	IVCycle
)

func (t PathType) String() string {
	switch t {
	case OBPath:
		return "OBPath"
	case EBCycle:
		return "EBCycle"
	case IVCycle:
		return "IVCycle"
	}
	return fmt.Sprintf("PathType(%d)", uint8(t))
}

// PathRec is the in-memory pathMap metadata for one path or cycle; the body
// lives in the spill store.  For cycles Src == Dst (the anchor).
type PathRec struct {
	ID       PathID
	Type     PathType
	Src, Dst graph.VertexID
	Level    int   // merge-tree level at which it was found
	Part     int   // partition (parent leaf ID) that found it
	Items    int64 // body length, for accounting
}

// CoarseEdge is a local edge of a (possibly merged) partition's coarse
// multigraph: either an original graph edge (Kind==ItemEdge, Ref==EdgeID)
// or an OB-pair edge standing for a lower-level path (Kind==ItemPath,
// Ref==PathID).
type CoarseEdge struct {
	U, V graph.VertexID
	Kind ItemKind
	Ref  int64
}

// RemoteEdge is a stored copy of a cut edge: Local is the endpoint inside
// the owning partition, Remote the endpoint elsewhere.  ConvertLevel is the
// merge-tree level at which the two sides' partition groups merge and the
// edge becomes local.
type RemoteEdge struct {
	Local, Remote graph.VertexID
	Edge          graph.EdgeID
	ConvertLevel  int32
}

// Stub records remote-degree owed to a vertex by edges this partition does
// not store (the de-duplicated copy lives in the other partition, or the
// edge is parked on a leaf host under the deferred-transfer heuristic).
// Stubs keep boundary/parity classification correct in the Section 5 modes
// at 3 Longs per (vertex, level) group instead of 2 Longs per edge.
type Stub struct {
	Vertex       graph.VertexID
	ConvertLevel int32
	Count        int64
}

// Mode selects the remote-edge management strategy.
type Mode uint8

const (
	// ModeCurrent is the paper's implemented design: every cut edge is
	// stored by both partitions and full state transfers at each merge.
	ModeCurrent Mode = iota
	// ModeDedup adds Section 5's "avoid remote edge duplication": only the
	// lighter partition of a future-merge pair stores the edge; the other
	// side holds a Stub.
	ModeDedup
	// ModeProposed is Section 5 in full: de-duplication plus deferred
	// transfer, where remote edges converting at level l stay parked on
	// their leaf host machine until superstep l.
	ModeProposed
)

func (m Mode) String() string {
	switch m {
	case ModeCurrent:
		return "current"
	case ModeDedup:
		return "dedup"
	case ModeProposed:
		return "proposed"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// PartState is the in-memory state of one (possibly merged) partition
// between levels: the coarse local multigraph plus its stored remote edges
// and stubs.  Vertex sets are implicit in the edges.
type PartState struct {
	// Parent is the leaf partition ID that names this (merged) partition.
	Parent int
	// Leaves are the leaf partitions merged into this state, sorted.
	Leaves []int
	// Local is the coarse local multigraph: OB-pair edges from prior
	// Phase 1 runs plus remote edges converted by merges.
	Local []CoarseEdge
	// Remote holds this partition's stored remote-edge copies.
	Remote []RemoteEdge
	// Stubs holds remote-degree owed by unstored edges (Section 5 modes).
	Stubs []Stub
}

// Clone returns a deep copy of s.
func (s *PartState) Clone() *PartState {
	c := &PartState{Parent: s.Parent}
	c.Leaves = append([]int(nil), s.Leaves...)
	c.Local = append([]CoarseEdge(nil), s.Local...)
	c.Remote = append([]RemoteEdge(nil), s.Remote...)
	c.Stubs = append([]Stub(nil), s.Stubs...)
	return c
}

// RemoteDegree returns the per-vertex remote degree implied by stored
// remote edges plus stubs.
func (s *PartState) RemoteDegree() map[graph.VertexID]int64 {
	deg := make(map[graph.VertexID]int64)
	for _, r := range s.Remote {
		deg[r.Local]++
	}
	for _, st := range s.Stubs {
		deg[st.Vertex] += st.Count
	}
	return deg
}

// LocalDegree returns the per-vertex coarse local degree.
func (s *PartState) LocalDegree() map[graph.VertexID]int64 {
	deg := make(map[graph.VertexID]int64)
	for _, e := range s.Local {
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}

// Longs returns the number of 8-byte Long values this state occupies under
// the paper's platform-independent memory metric (Sec. 4.3): 2 per vertex
// (ID and classification flags), 3 per coarse local edge (endpoints and
// body reference), 2 per stored remote-edge copy (endpoints), 3 per stub
// group.
func (s *PartState) Longs() int64 {
	verts := make(map[graph.VertexID]struct{})
	for _, e := range s.Local {
		verts[e.U] = struct{}{}
		verts[e.V] = struct{}{}
	}
	for _, r := range s.Remote {
		verts[r.Local] = struct{}{}
	}
	for _, st := range s.Stubs {
		verts[st.Vertex] = struct{}{}
	}
	return 2*int64(len(verts)) + 3*int64(len(s.Local)) +
		2*int64(len(s.Remote)) + 3*int64(len(s.Stubs))
}

// CheckParity verifies the Eulerian partition invariant δL(v)+δR(v) ≡ 0
// (mod 2) for every vertex of the state (Sec. 3.1).  It returns the first
// violation found.
func (s *PartState) CheckParity() error {
	local := s.LocalDegree()
	remote := s.RemoteDegree()
	verts := make(map[graph.VertexID]struct{}, len(local)+len(remote))
	for v := range local {
		verts[v] = struct{}{}
	}
	for v := range remote {
		verts[v] = struct{}{}
	}
	for v := range verts {
		if (local[v]+remote[v])%2 != 0 {
			return fmt.Errorf("euler: vertex %d has odd total degree %d local + %d remote",
				v, local[v], remote[v])
		}
	}
	return nil
}

package bsp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// TestHubRejectsMixedVersionHello dials the hub with the previous
// protocol version: instead of a welcome (or a silent reset) the peer
// must receive a typed frameAbort carrying AbortProtocol and the version
// numbers, and the connection must then close.
func TestHubRejectsMixedVersionHello(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(ln, HubOptions{})
	defer hub.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	hello := binary.AppendUvarint(nil, protoVersion-1)
	hello = binary.AppendUvarint(hello, 1)
	hello = append(hello, "time-traveller"...)
	if err := writeFrame(w, frameHello, hello); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, body, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("reading handshake response: %v", err)
	}
	if typ != frameAbort {
		t.Fatalf("got frame type %d, want frameAbort", typ)
	}
	fr := &fieldReader{buf: body}
	epoch, err := fr.uvarint()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 0 {
		t.Fatalf("handshake abort carries epoch %d, want 0", epoch)
	}
	code, err := fr.byteVal()
	if err != nil {
		t.Fatal(err)
	}
	if AbortReason(code) != AbortProtocol {
		t.Fatalf("abort reason %d, want AbortProtocol", code)
	}
	if reason := string(fr.rest()); !strings.Contains(reason, "version") {
		t.Fatalf("abort reason %q does not mention the version", reason)
	}

	// The hub hangs up after the abort; the peer must see EOF, not hang.
	if _, _, err := readFrame(bufio.NewReader(conn)); err != io.EOF && !isClosedNetErr(err) {
		t.Fatalf("after abort: got %v, want connection close", err)
	}
}

func isClosedNetErr(err error) bool {
	if err == nil {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	return strings.Contains(err.Error(), "closed") || strings.Contains(err.Error(), "reset")
}

package bsp

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// rawNode speaks the wire protocol by hand, so tests can inject exactly
// the frame sequences a well-behaved ServeNode never produces.
type rawNode struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func dialRawNode(t *testing.T, addr, name string) *rawNode {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	n := &rawNode{t: t, conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	hello := binary.AppendUvarint(nil, protoVersion)
	hello = binary.AppendUvarint(hello, 1)
	hello = append(hello, name...)
	n.send(frameHello, hello)
	typ, _ := n.recv()
	if typ != frameWelcome {
		t.Fatalf("expected welcome, got frame %d", typ)
	}
	return n
}

func (n *rawNode) send(typ byte, payload []byte) {
	n.t.Helper()
	if err := writeFrame(n.w, typ, payload); err != nil {
		n.t.Fatal(err)
	}
	if err := n.w.Flush(); err != nil {
		n.t.Fatal(err)
	}
}

func (n *rawNode) recv() (byte, []byte) {
	n.t.Helper()
	n.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, body, err := readFrame(n.r)
	if err != nil {
		n.t.Fatal(err)
	}
	return typ, body
}

func stepFrame(epoch uint64, step int, active bool) []byte {
	p := binary.AppendUvarint(nil, epoch)
	p = binary.AppendUvarint(p, uint64(step))
	var flags byte
	if active {
		flags |= 1
	}
	p = append(p, flags)
	p = appendBytesField(p, nil)
	p = appendMessages(p, nil)
	return p
}

func resultFrame(epoch uint64, errMsg string, payload []byte) []byte {
	p := binary.AppendUvarint(nil, epoch)
	p = appendBytesField(p, []byte(errMsg))
	return append(p, payload...)
}

func jobStartEpoch(t *testing.T, body []byte) uint64 {
	t.Helper()
	fr := &fieldReader{buf: body}
	epoch, err := fr.uvarint()
	if err != nil {
		t.Fatal(err)
	}
	return epoch
}

// TestHubRejectsFutureEpochFrame: a frame claiming an epoch the hub has
// not started yet is a protocol violation — the job fails with a
// non-retryable error and the offending node is dropped.
func TestHubRejectsFutureEpochFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(ln, HubOptions{StepTimeout: 5 * time.Second})
	defer hub.Close()
	ctx := context.Background()

	n := dialRawNode(t, ln.Addr().String(), "fortune-teller")
	if err := hub.WaitNodes(ctx, 1); err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{NumWorkers: 1, MinNodes: 1, PlanFor: func(lo, hi int) ([]byte, error) { return nil, nil }}
	done := make(chan error, 1)
	go func() {
		_, err := hub.RunJob(ctx, spec, JobHooks{})
		done <- err
	}()
	typ, body := n.recv()
	if typ != frameJobStart {
		t.Fatalf("expected job start, got frame %d", typ)
	}
	epoch := jobStartEpoch(t, body)
	n.send(frameStep, stepFrame(epoch+5, 0, false))

	jobErr := <-done
	if jobErr == nil || !strings.Contains(jobErr.Error(), "future epoch") {
		t.Fatalf("err = %v, want future-epoch rejection", jobErr)
	}
	if Retryable(jobErr) {
		t.Fatalf("protocol violation classified retryable: %v", jobErr)
	}
	if hub.NumNodes() != 0 {
		t.Fatal("offending node still registered")
	}
}

// TestHubDropsStragglerResultAfterAbort: a result frame from an aborted
// epoch arriving during the next job must be dropped by the epoch check,
// not delivered into the new job's barrier.
func TestHubDropsStragglerResultAfterAbort(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(ln, HubOptions{StepTimeout: 5 * time.Second})
	defer hub.Close()
	ctx := context.Background()
	addr := ln.Addr().String()
	spec := JobSpec{NumWorkers: 1, MinNodes: 1, PlanFor: func(lo, hi int) ([]byte, error) { return nil, nil }}

	// Job 1: the node bails out of the barrier with an engine error; the
	// hub aborts the epoch and deregisters it.
	n1 := dialRawNode(t, addr, "bailer")
	if err := hub.WaitNodes(ctx, 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := hub.RunJob(ctx, spec, JobHooks{})
		done <- err
	}()
	typ, body := n1.recv()
	if typ != frameJobStart {
		t.Fatalf("expected job start, got frame %d", typ)
	}
	epoch1 := jobStartEpoch(t, body)
	n1.send(frameJobResult, resultFrame(epoch1, "synthetic engine failure", nil))
	if err := <-done; err == nil || !strings.Contains(err.Error(), "left the barrier") {
		t.Fatalf("job 1 err = %v, want left-the-barrier failure", err)
	}

	// Job 2 on a fresh registration: replay a straggler result from the
	// dead epoch before the real barrier frame.
	n2 := dialRawNode(t, addr, "survivor")
	if err := hub.WaitNodes(ctx, 1); err != nil {
		t.Fatal(err)
	}
	type jobRes struct {
		stats *JobStats
		err   error
	}
	rc := make(chan jobRes, 1)
	go func() {
		st, err := hub.RunJob(ctx, spec, JobHooks{})
		rc <- jobRes{st, err}
	}()
	typ, body = n2.recv()
	if typ != frameJobStart {
		t.Fatalf("expected job start, got frame %d", typ)
	}
	epoch2 := jobStartEpoch(t, body)
	if epoch2 != epoch1+1 {
		t.Fatalf("job 2 epoch = %d, want %d", epoch2, epoch1+1)
	}
	n2.send(frameJobResult, resultFrame(epoch1, "straggler from the dead epoch", nil))
	n2.send(frameStep, stepFrame(epoch2, 0, false))
	if typ, _ = n2.recv(); typ != frameStepOK {
		t.Fatalf("expected barrier reply, got frame %d", typ)
	}
	n2.send(frameJobResult, resultFrame(epoch2, "", []byte("ok")))

	r := <-rc
	if r.err != nil {
		t.Fatalf("straggler poisoned job 2: %v", r.err)
	}
	if len(r.stats.Results) != 1 || string(r.stats.Results[0].Payload) != "ok" {
		t.Fatalf("job 2 results = %+v, want the survivor's payload", r.stats.Results)
	}
}

// TestHubBackToBackJobsAfterNodeLoss: a node dying mid-job yields a
// typed, retryable NodeLostError, and once the participants re-register
// the hub serves consecutive jobs over fresh epochs without residue.
func TestHubBackToBackJobsAfterNodeLoss(t *testing.T) {
	var killOnce atomic.Bool
	killOnce.Store(true)
	hub, stop := startCluster(t, 2, 2, func(job *NodeJob) Program {
		return ProgramFunc(func(c *Context) error {
			if c.Superstep() == 1 && job.Lo > 0 && killOnce.CompareAndSwap(true, false) {
				job.Transport.Close() // the node "dies" mid-barrier
			}
			if c.Superstep() >= 3 {
				c.VoteToHalt()
			}
			return nil
		})
	})
	defer stop()
	spec := JobSpec{NumWorkers: 4, MinNodes: 2, PlanFor: func(lo, hi int) ([]byte, error) { return nil, nil }}

	_, err := hub.RunJob(context.Background(), spec, JobHooks{})
	if err == nil {
		t.Fatal("job with a dying node reported success")
	}
	var lost *NodeLostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v (%T), want NodeLostError", err, err)
	}
	if !Retryable(err) {
		t.Fatalf("node loss not classified retryable: %v", err)
	}

	// Survivor and casualty both redial; then several jobs back-to-back.
	waitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hub.WaitNodes(waitCtx, 2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	okRuns := 0
	for okRuns < 3 {
		_, err := hub.RunJob(context.Background(), spec, JobHooks{})
		if err == nil {
			okRuns++
			continue
		}
		// A redial racing the job start can still fail it once more.
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not recover for back-to-back jobs: %v", err)
		}
		okRuns = 0
		time.Sleep(100 * time.Millisecond)
		hub.WaitNodes(waitCtx, 2)
	}
	if got := hub.NumNodes(); got != 2 {
		t.Fatalf("live membership = %d, want 2", got)
	}
	if lost.Node == 0 || lost.Step < 0 {
		t.Fatalf("typed error does not name the casualty: %+v", lost)
	}
}

package bsp

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire frames for the TCP transport.  Every frame is a 4-byte big-endian
// length (covering the type byte and the payload) followed by the type and
// the payload.  Payload integers are varints; nested byte fields carry a
// uvarint length prefix.
const (
	frameHello     byte = 1 // node → hub: proto version, capacity, name
	frameWelcome   byte = 2 // hub → node: node id
	frameJobStart  byte = 3 // hub → node: epoch, nworkers, lo, hi, plan
	frameStep      byte = 4 // node → hub: epoch, step, flags, sideband, messages
	frameStepOK    byte = 5 // hub → node: epoch, step, flags, sideband, messages
	frameJobResult byte = 6 // node → hub: epoch, error string, result payload
	frameAbort     byte = 7 // hub → node: epoch, reason code byte, reason text
)

// protoVersion is bumped whenever the frame layout changes incompatibly;
// the hub refuses hellos from other versions with a typed frameAbort so
// the peer can log a structured reason.  v2 added the machine-readable
// reason code byte to frameAbort; v3 delta+varint-compressed the euler
// sideband, state, and plan payloads (marker byte 0xE3).
const protoVersion = 3

// maxFramePayload bounds a single frame so a corrupt length prefix cannot
// demand gigabytes (1 GiB still comfortably fits a full partition plan).
const maxFramePayload = 1 << 30

// frameHeaderLen is the fixed per-frame overhead: length prefix + type.
const frameHeaderLen = 5

// writeFrame appends one frame to w without flushing, so a barrier's
// frames batch up in the peer's write buffer and hit the socket once.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("bsp: frame payload %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload))+1)
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// maxHelloPayload bounds the only frame read from a conn before it has
// authenticated itself as a node: a hello is a few varints and a name, so
// an unregistered conn can never demand a large pre-validation allocation.
const maxHelloPayload = 1 << 12

// readFrame reads one frame, returning its type and payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	return readFrameCapped(r, maxFramePayload)
}

// readFrameCapped is readFrame with an explicit payload bound, for
// contexts (the pre-registration handshake) where the peer is untrusted.
func readFrameCapped(r io.Reader, max uint32) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > max+1 {
		return 0, nil, fmt.Errorf("bsp: bad frame length %d (limit %d)", n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// fieldReader decodes a frame payload field by field.
type fieldReader struct {
	buf []byte
	off int
}

func (r *fieldReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bsp: truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *fieldReader) byteVal() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("bsp: truncated byte at offset %d", r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// bytes reads a uvarint-length-prefixed byte field.  The returned slice
// aliases the frame buffer; callers that retain it must copy.
func (r *fieldReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.buf)-r.off) < n {
		return nil, fmt.Errorf("bsp: truncated %d-byte field at offset %d", n, r.off)
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// rest returns everything after the decoded fields (trailing payloads).
func (r *fieldReader) rest() []byte { return r.buf[r.off:] }

func appendBytesField(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendMessages encodes a message batch: count, then (from, to, payload)
// per message.
func appendMessages(dst []byte, msgs []Message) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(msgs)))
	for _, m := range msgs {
		dst = binary.AppendUvarint(dst, uint64(m.From))
		dst = binary.AppendUvarint(dst, uint64(m.To))
		dst = appendBytesField(dst, m.Payload)
	}
	return dst
}

// readMessages decodes a batch written by appendMessages.  Message
// payloads are copied out of the frame buffer: receivers hold them across
// supersteps while the frame buffer is reused.
func (r *fieldReader) readMessages() ([]Message, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Every message occupies at least 3 bytes (from, to, empty payload);
	// bounding the count before allocating keeps a corrupt length from
	// demanding terabytes.
	if n > uint64(len(r.buf)-r.off)/3 {
		return nil, fmt.Errorf("bsp: message count %d exceeds frame size", n)
	}
	msgs := make([]Message, 0, n)
	for i := uint64(0); i < n; i++ {
		from, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		to, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		payload, err := r.bytes()
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, Message{From: int(from), To: int(to), Payload: append([]byte(nil), payload...)})
	}
	return msgs, nil
}

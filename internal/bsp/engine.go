// Package bsp is a hand-built Bulk Synchronous Parallel engine: the
// substrate this reproduction uses in place of the paper's Apache Spark
// deployment.  Workers (one per graph partition, each standing in for a
// Spark executor on its own VM) execute supersteps concurrently as
// goroutines; messages sent during superstep s are delivered in bulk after
// a global barrier at the start of superstep s+1, exactly the Pregel/BSP
// semantics of Valiant's model that the paper's algorithm assumes.
//
// The engine measures real per-worker compute time and byte-counts every
// message.  A CostModel converts those observations into the
// platform-overhead component (shuffle transfer, task scheduling, barrier
// coordination) that the paper's Figs. 5–6 attribute to Spark, so the
// "total vs user compute" split is reproducible on a single machine.
package bsp

import (
	"fmt"
	"sync"
	"time"
)

// Message is a payload in flight between two workers.
type Message struct {
	From, To int
	Payload  []byte
}

// Program is the per-worker compute function of one BSP job.  Compute is
// invoked once per superstep for every active worker, concurrently with
// other workers; it must only touch worker-local state plus the Context.
type Program interface {
	Compute(ctx *Context) error
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(ctx *Context) error

// Compute implements Program.
func (f ProgramFunc) Compute(ctx *Context) error { return f(ctx) }

// Context is the per-worker, per-superstep view handed to Program.Compute.
type Context struct {
	worker    int
	superstep int
	inbox     []Message
	outbox    []Message
	halted    bool
	nworkers  int
}

// Worker returns this worker's index in [0, NumWorkers).
func (c *Context) Worker() int { return c.worker }

// Superstep returns the current superstep number, starting at 0.
func (c *Context) Superstep() int { return c.superstep }

// NumWorkers returns the total worker count.
func (c *Context) NumWorkers() int { return c.nworkers }

// Received returns the messages delivered to this worker at the barrier
// preceding this superstep.
func (c *Context) Received() []Message { return c.inbox }

// Send queues a message for delivery to worker `to` at the next barrier.
func (c *Context) Send(to int, payload []byte) {
	if to < 0 || to >= c.nworkers {
		panic(fmt.Sprintf("bsp: send to out-of-range worker %d", to))
	}
	c.outbox = append(c.outbox, Message{From: c.worker, To: to, Payload: payload})
}

// VoteToHalt marks this worker inactive.  It is reactivated if a message
// arrives; the job terminates when every worker has halted and no messages
// are in flight.
func (c *Context) VoteToHalt() { c.halted = true }

// StageStat records one superstep for the engine trace (the textual
// analogue of the paper's Fig. 3 Spark DAG).
type StageStat struct {
	Superstep     int
	ActiveWorkers int
	Messages      int64
	Bytes         int64
	MaxCompute    time.Duration // slowest worker's real compute time
	SumCompute    time.Duration // total real compute across workers
	Modeled       time.Duration // modeled wall time incl. platform overhead
}

// Metrics aggregates a full run.
type Metrics struct {
	Supersteps   int
	Messages     int64
	Bytes        int64
	SumCompute   time.Duration // Σ real compute over all workers and steps
	CriticalPath time.Duration // Σ over steps of slowest worker (ideal BSP time)
	ModeledTotal time.Duration // CriticalPath + modeled platform overhead
	Stages       []StageStat
}

// Engine executes Programs over a fixed set of workers.
type Engine struct {
	nworkers   int
	cost       CostModel
	maxSteps   int
	sequential bool
}

// Option configures an Engine.
type Option func(*Engine)

// WithCostModel installs a platform cost model; the zero model adds no
// overhead.
func WithCostModel(c CostModel) Option {
	return func(e *Engine) { e.cost = c }
}

// WithMaxSupersteps bounds the run; exceeding it is reported as an error.
// The default is 1<<20, a guard against non-terminating programs.
func WithMaxSupersteps(n int) Option {
	return func(e *Engine) { e.maxSteps = n }
}

// WithSequentialWorkers runs the workers of each superstep one at a time
// instead of concurrently.  BSP semantics are unchanged (messages still
// deliver at the barrier), but per-worker compute timings become free of
// scheduler and memory-bandwidth interference — the configuration used for
// the Fig. 7 complexity measurements, where each paper "worker" had a
// dedicated VM.
func WithSequentialWorkers() Option {
	return func(e *Engine) { e.sequential = true }
}

// New returns an Engine with nworkers workers.
func New(nworkers int, opts ...Option) *Engine {
	if nworkers <= 0 {
		panic("bsp: need at least one worker")
	}
	e := &Engine{nworkers: nworkers, maxSteps: 1 << 20}
	for _, o := range opts {
		o(e)
	}
	return e
}

// NumWorkers returns the engine's worker count.
func (e *Engine) NumWorkers() int { return e.nworkers }

// Run executes p to termination: all workers halted with no messages in
// flight.  It returns the run metrics.  If any Compute call fails, Run
// stops at that barrier and returns the first error by worker index.
func (e *Engine) Run(p Program) (Metrics, error) {
	var m Metrics
	inboxes := make([][]Message, e.nworkers)
	halted := make([]bool, e.nworkers)

	for step := 0; ; step++ {
		if step >= e.maxSteps {
			return m, fmt.Errorf("bsp: exceeded %d supersteps", e.maxSteps)
		}
		// A worker is active in this superstep if it has not halted or has
		// mail waiting (mail reactivates, per Pregel semantics).
		var active []int
		for w := 0; w < e.nworkers; w++ {
			if !halted[w] || len(inboxes[w]) > 0 {
				active = append(active, w)
			}
		}
		if len(active) == 0 {
			break
		}

		ctxs := make([]*Context, len(active))
		compute := make([]time.Duration, len(active))
		errs := make([]error, len(active))
		runWorker := func(i int) {
			start := time.Now()
			defer func() {
				compute[i] = time.Since(start)
				if r := recover(); r != nil {
					// A panicking worker is a failed task, not a
					// crashed cluster: surface it as an error.
					errs[i] = fmt.Errorf("worker %d panic: %v", ctxs[i].worker, r)
				}
			}()
			errs[i] = p.Compute(ctxs[i])
		}
		for i, w := range active {
			ctxs[i] = &Context{
				worker:    w,
				superstep: step,
				inbox:     inboxes[w],
				nworkers:  e.nworkers,
			}
		}
		if e.sequential {
			for i := range active {
				runWorker(i)
			}
		} else {
			var wg sync.WaitGroup
			for i := range active {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					runWorker(i)
				}(i)
			}
			wg.Wait()
		}
		for _, err := range errs {
			if err != nil {
				return m, fmt.Errorf("bsp: superstep %d: %w", step, err)
			}
		}

		// Barrier: collect outboxes, update halt state, deliver.
		stage := StageStat{Superstep: step, ActiveWorkers: len(active)}
		for w := range inboxes {
			inboxes[w] = nil
		}
		perWorkerBytes := make([]int64, e.nworkers)
		perWorkerMsgs := make([]int64, e.nworkers)
		for i, w := range active {
			halted[w] = ctxs[i].halted
			if compute[i] > stage.MaxCompute {
				stage.MaxCompute = compute[i]
			}
			stage.SumCompute += compute[i]
			for _, msg := range ctxs[i].outbox {
				inboxes[msg.To] = append(inboxes[msg.To], msg)
				b := int64(len(msg.Payload))
				stage.Messages++
				stage.Bytes += b
				perWorkerBytes[msg.From] += b
				perWorkerBytes[msg.To] += b
				perWorkerMsgs[msg.From]++
			}
		}
		stage.Modeled = e.cost.StageTime(stage, active, compute, perWorkerBytes, perWorkerMsgs)

		m.Supersteps++
		m.Messages += stage.Messages
		m.Bytes += stage.Bytes
		m.SumCompute += stage.SumCompute
		m.CriticalPath += stage.MaxCompute
		m.ModeledTotal += stage.Modeled
		m.Stages = append(m.Stages, stage)
	}
	return m, nil
}

// Package bsp is a hand-built Bulk Synchronous Parallel engine: the
// substrate this reproduction uses in place of the paper's Apache Spark
// deployment.  Workers (one per graph partition, each standing in for a
// Spark executor on its own VM) execute supersteps concurrently as
// goroutines; messages sent during superstep s are delivered in bulk after
// a global barrier at the start of superstep s+1, exactly the Pregel/BSP
// semantics of Valiant's model that the paper's algorithm assumes.
//
// The engine measures real per-worker compute time and byte-counts every
// message.  A CostModel converts those observations into the
// platform-overhead component (shuffle transfer, task scheduling, barrier
// coordination) that the paper's Figs. 5–6 attribute to Spark, so the
// "total vs user compute" split is reproducible on a single machine.
package bsp

import (
	"fmt"
	"sync"
	"time"
)

// Message is a payload in flight between two workers.
type Message struct {
	From, To int
	Payload  []byte
}

// Program is the per-worker compute function of one BSP job.  Compute is
// invoked once per superstep for every active worker, concurrently with
// other workers; it must only touch worker-local state plus the Context.
type Program interface {
	Compute(ctx *Context) error
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(ctx *Context) error

// Compute implements Program.
func (f ProgramFunc) Compute(ctx *Context) error { return f(ctx) }

// Context is the per-worker, per-superstep view handed to Program.Compute.
type Context struct {
	worker    int
	superstep int
	inbox     []Message
	outbox    []Message
	halted    bool
	nworkers  int
}

// Worker returns this worker's index in [0, NumWorkers).
func (c *Context) Worker() int { return c.worker }

// Superstep returns the current superstep number, starting at 0.
func (c *Context) Superstep() int { return c.superstep }

// NumWorkers returns the total worker count.
func (c *Context) NumWorkers() int { return c.nworkers }

// Received returns the messages delivered to this worker at the barrier
// preceding this superstep.
func (c *Context) Received() []Message { return c.inbox }

// Send queues a message for delivery to worker `to` at the next barrier.
func (c *Context) Send(to int, payload []byte) {
	if to < 0 || to >= c.nworkers {
		panic(fmt.Sprintf("bsp: send to out-of-range worker %d", to))
	}
	c.outbox = append(c.outbox, Message{From: c.worker, To: to, Payload: payload})
}

// VoteToHalt marks this worker inactive.  It is reactivated if a message
// arrives; the job terminates when every worker has halted and no messages
// are in flight.
func (c *Context) VoteToHalt() { c.halted = true }

// StageStat records one superstep for the engine trace (the textual
// analogue of the paper's Fig. 3 Spark DAG).
type StageStat struct {
	Superstep     int
	ActiveWorkers int
	Messages      int64
	Bytes         int64
	MaxCompute    time.Duration // slowest worker's real compute time
	SumCompute    time.Duration // total real compute across workers
	Modeled       time.Duration // modeled wall time incl. platform overhead
	Wire          time.Duration // real barrier/transfer time on the transport
	WireBytes     int64         // frame bytes moved by the transport
}

// Metrics aggregates a full run.
type Metrics struct {
	Supersteps   int
	Messages     int64
	Bytes        int64
	SumCompute   time.Duration // Σ real compute over all workers and steps
	CriticalPath time.Duration // Σ over steps of slowest worker (ideal BSP time)
	ModeledTotal time.Duration // CriticalPath + modeled platform overhead
	WireTotal    time.Duration // Σ real transport barrier time (zero locally)
	WireBytes    int64         // Σ transport frame bytes (zero locally)
	Stages       []StageStat
}

// MergeMetrics combines the per-instance metrics of one distributed run
// into a cluster-wide view: per superstep, message counts and compute sums
// add up, the slowest instance sets the critical path, and the largest
// modeled/wire time stands for the whole barrier (instances block on the
// same hub, so their wire times overlap rather than add).
func MergeMetrics(ms ...Metrics) Metrics {
	var out Metrics
	for _, m := range ms {
		if len(m.Stages) > len(out.Stages) {
			out.Stages = append(out.Stages, make([]StageStat, len(m.Stages)-len(out.Stages))...)
		}
		for i, s := range m.Stages {
			o := &out.Stages[i]
			o.Superstep = s.Superstep
			o.ActiveWorkers += s.ActiveWorkers
			o.Messages += s.Messages
			o.Bytes += s.Bytes
			o.SumCompute += s.SumCompute
			if s.MaxCompute > o.MaxCompute {
				o.MaxCompute = s.MaxCompute
			}
			if s.Modeled > o.Modeled {
				o.Modeled = s.Modeled
			}
			if s.Wire > o.Wire {
				o.Wire = s.Wire
			}
			// Wire *time* overlaps (instances block on the same hub),
			// but bytes moved are distinct per socket and add up.
			o.WireBytes += s.WireBytes
		}
	}
	out.Supersteps = len(out.Stages)
	for _, s := range out.Stages {
		out.Messages += s.Messages
		out.Bytes += s.Bytes
		out.SumCompute += s.SumCompute
		out.CriticalPath += s.MaxCompute
		out.ModeledTotal += s.Modeled
		out.WireTotal += s.Wire
		out.WireBytes += s.WireBytes
	}
	return out
}

// Engine executes Programs over the worker range [lo, hi) of a job with
// nworkers workers in total.  The default engine hosts the full range over
// a LocalTransport; a distributed engine instance hosts a sub-range and
// exchanges the rest through its Transport.
type Engine struct {
	nworkers   int
	lo, hi     int
	transport  Transport
	cost       CostModel
	maxSteps   int
	sequential bool
}

// Option configures an Engine.
type Option func(*Engine)

// WithCostModel installs a platform cost model; the zero model adds no
// overhead.
func WithCostModel(c CostModel) Option {
	return func(e *Engine) { e.cost = c }
}

// WithMaxSupersteps bounds the run; exceeding it is reported as an error.
// The default is 1<<20, a guard against non-terminating programs.
func WithMaxSupersteps(n int) Option {
	return func(e *Engine) { e.maxSteps = n }
}

// WithTransport installs the transport carrying inter-instance messages
// and the barrier; the default is LocalTransport.  The engine owns the
// transport for the duration of Run but does not close it.
func WithTransport(t Transport) Option {
	return func(e *Engine) { e.transport = t }
}

// WithWorkerRange restricts the engine instance to hosting workers
// [lo, hi) of the job; messages addressed outside the range are routed
// through the transport.  The default range is the full worker set.
func WithWorkerRange(lo, hi int) Option {
	return func(e *Engine) { e.lo, e.hi = lo, hi }
}

// WithSequentialWorkers runs the workers of each superstep one at a time
// instead of concurrently.  BSP semantics are unchanged (messages still
// deliver at the barrier), but per-worker compute timings become free of
// scheduler and memory-bandwidth interference — the configuration used for
// the Fig. 7 complexity measurements, where each paper "worker" had a
// dedicated VM.
func WithSequentialWorkers() Option {
	return func(e *Engine) { e.sequential = true }
}

// New returns an Engine with nworkers workers.
func New(nworkers int, opts ...Option) *Engine {
	if nworkers <= 0 {
		panic("bsp: need at least one worker")
	}
	e := &Engine{nworkers: nworkers, lo: 0, hi: nworkers, maxSteps: 1 << 20, transport: LocalTransport{}}
	for _, o := range opts {
		o(e)
	}
	if e.lo < 0 || e.hi > e.nworkers || e.lo >= e.hi {
		panic(fmt.Sprintf("bsp: worker range [%d, %d) invalid for %d workers", e.lo, e.hi, e.nworkers))
	}
	if e.transport == nil {
		e.transport = LocalTransport{}
	}
	return e
}

// NumWorkers returns the engine's worker count.
func (e *Engine) NumWorkers() int { return e.nworkers }

// Run executes p to termination: all workers halted with no messages in
// flight, cluster-wide when the transport is remote.  It returns the run
// metrics.  If any Compute call fails, Run stops at that barrier and
// returns the first error by worker index.
func (e *Engine) Run(p Program) (Metrics, error) {
	var m Metrics
	hooks, _ := p.(BarrierHooks)
	inboxes := make([][]Message, e.nworkers)
	halted := make([]bool, e.nworkers)

	for step := 0; ; step++ {
		if step >= e.maxSteps {
			return m, fmt.Errorf("bsp: exceeded %d supersteps", e.maxSteps)
		}
		// A worker is active in this superstep if it has not halted or has
		// mail waiting (mail reactivates, per Pregel semantics).  A
		// distributed instance can sit out a superstep with no active
		// workers of its own while the rest of the cluster computes; it
		// still participates in the barrier below.
		var active []int
		for w := e.lo; w < e.hi; w++ {
			if !halted[w] || len(inboxes[w]) > 0 {
				active = append(active, w)
			}
		}

		ctxs := make([]*Context, len(active))
		compute := make([]time.Duration, len(active))
		errs := make([]error, len(active))
		runWorker := func(i int) {
			start := time.Now()
			defer func() {
				compute[i] = time.Since(start)
				if r := recover(); r != nil {
					// A panicking worker is a failed task, not a
					// crashed cluster: surface it as an error.
					errs[i] = fmt.Errorf("worker %d panic: %v", ctxs[i].worker, r)
				}
			}()
			errs[i] = p.Compute(ctxs[i])
		}
		for i, w := range active {
			ctxs[i] = &Context{
				worker:    w,
				superstep: step,
				inbox:     inboxes[w],
				nworkers:  e.nworkers,
			}
		}
		if e.sequential {
			for i := range active {
				runWorker(i)
			}
		} else {
			var wg sync.WaitGroup
			for i := range active {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					runWorker(i)
				}(i)
			}
			wg.Wait()
		}
		for _, err := range errs {
			if err != nil {
				return m, fmt.Errorf("bsp: superstep %d: %w", step, err)
			}
		}

		// Barrier part 1: collect outboxes, update halt state, deliver
		// locally, and set aside messages leaving this instance's range.
		stage := StageStat{Superstep: step, ActiveWorkers: len(active)}
		for w := e.lo; w < e.hi; w++ {
			inboxes[w] = nil
		}
		var out []Message
		perWorkerBytes := make([]int64, e.nworkers)
		perWorkerMsgs := make([]int64, e.nworkers)
		for i, w := range active {
			halted[w] = ctxs[i].halted
			if compute[i] > stage.MaxCompute {
				stage.MaxCompute = compute[i]
			}
			stage.SumCompute += compute[i]
			for _, msg := range ctxs[i].outbox {
				if msg.To >= e.lo && msg.To < e.hi {
					inboxes[msg.To] = append(inboxes[msg.To], msg)
				} else {
					out = append(out, msg)
				}
				b := int64(len(msg.Payload))
				stage.Messages++
				stage.Bytes += b
				perWorkerBytes[msg.From] += b
				perWorkerBytes[msg.To] += b
				perWorkerMsgs[msg.From]++
			}
		}

		// Barrier part 2: the transport exchange.  LocalTransport answers
		// from the local activity alone; a remote transport ships out and
		// the sideband, blocks on the hub, and brings back remote mail
		// plus the global halt consensus.
		localActive := false
		for w := e.lo; w < e.hi; w++ {
			if !halted[w] || len(inboxes[w]) > 0 {
				localActive = true
				break
			}
		}
		ex := Exchange{Step: step, Out: out, LocalActive: localActive}
		if hooks != nil {
			band, err := hooks.EmitSideband(step)
			if err != nil {
				return m, fmt.Errorf("bsp: superstep %d sideband: %w", step, err)
			}
			ex.Sideband = band
		}
		d, err := e.transport.Exchange(&ex)
		if err != nil {
			return m, fmt.Errorf("bsp: superstep %d barrier: %w", step, err)
		}
		for _, msg := range d.In {
			if msg.To < e.lo || msg.To >= e.hi {
				return m, fmt.Errorf("bsp: superstep %d: delivery for worker %d outside local range [%d, %d)", step, msg.To, e.lo, e.hi)
			}
			inboxes[msg.To] = append(inboxes[msg.To], msg)
		}
		if hooks != nil {
			if err := hooks.ApplySideband(step, d.Sideband); err != nil {
				return m, fmt.Errorf("bsp: superstep %d sideband: %w", step, err)
			}
		}
		stage.Wire = time.Duration(d.Wire)
		stage.WireBytes = d.WireBytes
		// The modeled platform overhead is the synthetic cost model plus
		// the real wire time the transport observed (zero locally), so
		// distributed runs feed the model from measured shuffle stats.
		stage.Modeled = e.cost.StageTime(stage, active, compute, perWorkerBytes, perWorkerMsgs) + stage.Wire

		m.Supersteps++
		m.Messages += stage.Messages
		m.Bytes += stage.Bytes
		m.SumCompute += stage.SumCompute
		m.CriticalPath += stage.MaxCompute
		m.ModeledTotal += stage.Modeled
		m.WireTotal += stage.Wire
		m.WireBytes += stage.WireBytes
		m.Stages = append(m.Stages, stage)
		if d.Halt {
			break
		}
	}
	return m, nil
}

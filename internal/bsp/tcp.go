package bsp

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"net"
	"time"

	"repro/internal/faultpoint"
)

// Fault-injection point names wired into the wire and dial paths (see
// internal/faultpoint for the arming grammar).  Disarmed they cost one
// atomic load.
const (
	// FaultNodeWire fires in TCPTransport.Exchange before the superstep
	// frame is written; step-scoped.  drop closes the conn (the node
	// appears to die mid-superstep), delay stalls the frame, error fails
	// the exchange outright.
	FaultNodeWire = "bsp.node.wire"
	// FaultNodeDial fires in ServeNode before each dial attempt; error
	// and drop count as a failed dial, delay stalls it.
	FaultNodeDial = "bsp.node.dial"
	// FaultHubRead fires in the hub before reading a peer's barrier
	// frame; step-scoped.  drop closes the peer conn, error reports the
	// node lost.
	FaultHubRead = "bsp.hub.read"
)

// TCPTransport is the node side of the distributed barrier: it speaks
// length-prefixed frames over one net.Conn to a Hub, batching each
// superstep's messages and sideband into a single buffered write.  Frames
// carry the job epoch and superstep number, so replies that straggle in
// from an earlier, aborted job are recognised and dropped instead of being
// delivered into the wrong barrier.
//
// A TCPTransport is created by ServeNode for each job assignment; it is
// bound to that job's epoch and conn and is not safe for concurrent
// Exchange calls (the engine calls it from one goroutine).
type TCPTransport struct {
	conn  net.Conn
	r     *bufio.Reader
	w     *bufio.Writer
	epoch uint64
	buf   []byte // reused frameStep encode buffer
}

// Exchange implements Transport: one frameStep out, one frameStepOK back.
func (t *TCPTransport) Exchange(ex *Exchange) (Delivery, error) {
	start := time.Now()
	if o := faultpoint.Eval(FaultNodeWire, ex.Step); o.Fired() {
		switch o.Act {
		case faultpoint.Drop:
			t.conn.Close() // the write below fails; the hub sees the node die
		case faultpoint.Delay:
			time.Sleep(o.Sleep)
		case faultpoint.Error:
			return Delivery{}, fmt.Errorf("bsp: sending superstep %d: %w", ex.Step, o.Err)
		}
	}
	payload := t.buf[:0]
	payload = binary.AppendUvarint(payload, t.epoch)
	payload = binary.AppendUvarint(payload, uint64(ex.Step))
	var flags byte
	if ex.LocalActive {
		flags |= 1
	}
	payload = append(payload, flags)
	payload = appendBytesField(payload, ex.Sideband)
	payload = appendMessages(payload, ex.Out)
	t.buf = payload
	wire := int64(len(payload) + frameHeaderLen)
	if err := writeFrame(t.w, frameStep, payload); err != nil {
		return Delivery{}, fmt.Errorf("bsp: sending superstep %d: %w", ex.Step, err)
	}
	if err := t.w.Flush(); err != nil {
		return Delivery{}, fmt.Errorf("bsp: sending superstep %d: %w", ex.Step, err)
	}

	for {
		typ, body, err := readFrame(t.r)
		if err != nil {
			return Delivery{}, fmt.Errorf("bsp: awaiting superstep %d barrier: %w", ex.Step, err)
		}
		wire += int64(len(body) + frameHeaderLen)
		switch typ {
		case frameStepOK:
			r := &fieldReader{buf: body}
			epoch, err := r.uvarint()
			if err != nil {
				return Delivery{}, err
			}
			step, err := r.uvarint()
			if err != nil {
				return Delivery{}, err
			}
			if epoch < t.epoch || (epoch == t.epoch && int(step) < ex.Step) {
				continue // straggler from an aborted job or a duplicate: drop
			}
			if epoch != t.epoch || int(step) != ex.Step {
				return Delivery{}, fmt.Errorf("bsp: barrier reply for epoch %d step %d while at epoch %d step %d", epoch, step, t.epoch, ex.Step)
			}
			rflags, err := r.byteVal()
			if err != nil {
				return Delivery{}, err
			}
			sideband, err := r.bytes()
			if err != nil {
				return Delivery{}, err
			}
			in, err := r.readMessages()
			if err != nil {
				return Delivery{}, err
			}
			d := Delivery{In: in, Halt: rflags&1 != 0, WireBytes: wire}
			if len(sideband) > 0 {
				d.Sideband = append([]byte(nil), sideband...)
			}
			d.Wire = int64(time.Since(start))
			return d, nil
		case frameAbort:
			r := &fieldReader{buf: body}
			epoch, err := r.uvarint()
			if err != nil {
				return Delivery{}, err
			}
			if epoch < t.epoch {
				continue
			}
			code, _ := r.byteVal() // absent on malformed frames: AbortUnknown
			return Delivery{}, &AbortError{Code: AbortReason(code), Reason: string(r.rest())}
		default:
			return Delivery{}, fmt.Errorf("bsp: unexpected frame %d during superstep %d", typ, ex.Step)
		}
	}
}

// Close implements Transport by closing the underlying conn, which also
// unblocks a pending Exchange with an error.
func (t *TCPTransport) Close() error { return t.conn.Close() }

// NodeJob is one job assignment received from the hub: this node hosts
// workers [Lo, Hi) of a NumWorkers-worker job, with Plan as the opaque
// job payload and Transport already bound to the job's barrier.
type NodeJob struct {
	Epoch      uint64
	NumWorkers int
	Lo, Hi     int
	Plan       []byte
	Transport  Transport
}

// NodeHandler executes one job assignment.  The returned payload is
// shipped back to the hub as the node's job result; the error (if any)
// fails the whole job on the hub side.
type NodeHandler func(job *NodeJob) ([]byte, error)

// NodeOptions configures ServeNode.
type NodeOptions struct {
	// Name identifies the node to the hub (diagnostics only).
	Name string
	// Capacity is the number of engine workers this node offers; the hub
	// sizes the node's worker range proportionally.  Minimum 1.
	Capacity int
	// BackoffMin and BackoffMax bound the reconnect backoff (defaults
	// 250ms and 5s).  The delay doubles per failed dial, is capped at
	// BackoffMax, and resets after a successful dial.  Every sleep is
	// jittered to a uniform value in [d/2, 3d/2) so the workers of a
	// restarted coordinator don't redial as a synchronized herd.
	BackoffMin, BackoffMax time.Duration
	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (o NodeOptions) withDefaults() NodeOptions {
	out := o
	if out.Capacity < 1 {
		out.Capacity = 1
	}
	if out.BackoffMin <= 0 {
		out.BackoffMin = 250 * time.Millisecond
	}
	if out.BackoffMax <= 0 {
		out.BackoffMax = 5 * time.Second
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// ServeNode joins the hub at addr and serves job assignments until ctx is
// cancelled: dial (with exponential backoff), register, then loop
// receiving frameJobStart, running the handler over a job-scoped
// TCPTransport, and returning the result.  A lost connection — mid-job or
// idle — sends it back to the dial loop; the job it interrupted fails on
// the hub side and is not resumed.
func ServeNode(ctx context.Context, addr string, h NodeHandler, opts NodeOptions) error {
	o := opts.withDefaults()
	backoff := o.BackoffMin
	var d net.Dialer
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var conn net.Conn
		var err error
		if fp := faultpoint.Eval(FaultNodeDial, -1); fp.Fired() {
			switch fp.Act {
			case faultpoint.Delay:
				if !sleepCtx(ctx, fp.Sleep) {
					return ctx.Err()
				}
			default: // error and drop both read as a failed dial
				err = fp.Err
				if err == nil {
					err = fmt.Errorf("faultpoint: injected dial failure at %s", FaultNodeDial)
				}
			}
		}
		if err == nil {
			conn, err = d.DialContext(ctx, "tcp", addr)
		}
		if err != nil {
			sleep := jitterBackoff(backoff)
			o.Logf("bsp node: dial %s: %v (retrying in %v)", addr, err, sleep)
			if !sleepCtx(ctx, sleep) {
				return ctx.Err()
			}
			if backoff *= 2; backoff > o.BackoffMax {
				backoff = o.BackoffMax
			}
			continue
		}
		backoff = o.BackoffMin
		err = serveNodeConn(ctx, conn, h, o)
		conn.Close()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		sleep := jitterBackoff(backoff)
		o.Logf("bsp node: connection to %s lost: %v (redialing in %v)", addr, err, sleep)
		if !sleepCtx(ctx, sleep) {
			return ctx.Err()
		}
	}
}

// jitterBackoff spreads d to a uniform duration in [d/2, 3d/2), breaking
// up the reconnect herd that forms when a coordinator restart drops every
// worker's conn at the same instant.
func jitterBackoff(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + rand.N(d)
}

// serveNodeConn registers over one established conn and serves jobs until
// the conn breaks or ctx is cancelled.
func serveNodeConn(ctx context.Context, conn net.Conn, h NodeHandler, o NodeOptions) error {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	// A cancelled ctx closes the conn, unblocking any pending read.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)

	hello := binary.AppendUvarint(nil, protoVersion)
	hello = binary.AppendUvarint(hello, uint64(o.Capacity))
	hello = append(hello, o.Name...)
	if err := writeFrame(w, frameHello, hello); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	typ, body, err := readFrame(r)
	if err != nil {
		return fmt.Errorf("awaiting welcome: %w", err)
	}
	if typ == frameAbort {
		// The hub refused the handshake (typically a protocol version
		// mismatch); surface the typed reason instead of a bare frame
		// number so callers can tell a doomed redial loop from a flake.
		fr := &fieldReader{buf: body}
		if _, err := fr.uvarint(); err != nil {
			return fmt.Errorf("expected welcome frame, got malformed abort: %w", err)
		}
		code, _ := fr.byteVal()
		return fmt.Errorf("hub refused registration: %w",
			&AbortError{Code: AbortReason(code), Reason: string(fr.rest())})
	}
	if typ != frameWelcome {
		return fmt.Errorf("expected welcome frame, got %d", typ)
	}
	fr := &fieldReader{buf: body}
	id, err := fr.uvarint()
	if err != nil {
		return err
	}
	o.Logf("bsp node: registered with hub as node %d (capacity %d)", id, o.Capacity)

	for {
		typ, body, err := readFrame(r)
		if err != nil {
			return err
		}
		switch typ {
		case frameJobStart:
			fr := &fieldReader{buf: body}
			epoch, err := fr.uvarint()
			if err != nil {
				return err
			}
			nworkers, err := fr.uvarint()
			if err != nil {
				return err
			}
			lo, err := fr.uvarint()
			if err != nil {
				return err
			}
			hi, err := fr.uvarint()
			if err != nil {
				return err
			}
			job := &NodeJob{
				Epoch:      epoch,
				NumWorkers: int(nworkers),
				Lo:         int(lo),
				Hi:         int(hi),
				Plan:       fr.rest(),
				Transport:  &TCPTransport{conn: conn, r: r, w: w, epoch: epoch},
			}
			o.Logf("bsp node: job epoch %d: hosting workers [%d, %d) of %d", epoch, job.Lo, job.Hi, job.NumWorkers)
			payload, jobErr := runNodeJob(h, job)
			res := binary.AppendUvarint(nil, epoch)
			var errStr string
			if jobErr != nil {
				errStr = jobErr.Error()
			}
			res = appendBytesField(res, []byte(errStr))
			res = append(res, payload...)
			if err := writeFrame(w, frameJobResult, res); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
			if jobErr != nil {
				// The handler's transport may have died mid-exchange; the
				// conn state is then unknown, so re-register from scratch.
				return fmt.Errorf("job epoch %d failed: %w", epoch, jobErr)
			}
		case frameAbort:
			// An abort for a job this node already finished (or never
			// started): nothing to run, but log the structured reason.
			fr := &fieldReader{buf: body}
			if epoch, err := fr.uvarint(); err == nil {
				code, _ := fr.byteVal()
				o.Logf("bsp node: hub aborted job epoch %d [%s]: %s", epoch, AbortReason(code), fr.rest())
			}
		default:
			return fmt.Errorf("unexpected frame %d while idle", typ)
		}
	}
}

// runNodeJob isolates handler panics so a bad job cannot take down the
// node process.
func runNodeJob(h NodeHandler, job *NodeJob) (payload []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("node job panic: %v", r)
		}
	}()
	return h(job)
}

// sleepCtx sleeps for d, returning false early if ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

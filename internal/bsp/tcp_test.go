package bsp

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startCluster brings up a hub and n node loops in-process over loopback
// TCP, each node running the Program returned by mk over its assigned
// worker range.
func startCluster(t *testing.T, nodes int, capacity int, mk func(job *NodeJob) Program) (*Hub, context.CancelFunc) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(ln, HubOptions{StepTimeout: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < nodes; i++ {
		go ServeNode(ctx, ln.Addr().String(), func(job *NodeJob) ([]byte, error) {
			e := New(job.NumWorkers, WithWorkerRange(job.Lo, job.Hi), WithTransport(job.Transport))
			m, err := e.Run(mk(job))
			if err != nil {
				return nil, err
			}
			return binary.AppendUvarint(nil, uint64(m.Supersteps)), nil
		}, NodeOptions{Name: fmt.Sprintf("node-%d", i), Capacity: capacity})
	}
	if err := hub.WaitNodes(ctx, nodes); err != nil {
		cancel()
		t.Fatal(err)
	}
	return hub, func() {
		cancel()
		hub.Close()
	}
}

// TestTCPTokenRing passes a token around a worker ring split across two
// processes' worth of engine instances, checking delivery, reactivation,
// and cluster-wide halt consensus.
func TestTCPTokenRing(t *testing.T) {
	const workers, hops = 6, 17
	var lastSeen int64 = -1
	hub, stop := startCluster(t, 2, workers/2, func(job *NodeJob) Program {
		return ProgramFunc(func(ctx *Context) error {
			ctx.VoteToHalt()
			if ctx.Superstep() == 0 {
				if ctx.Worker() == 0 {
					var buf [8]byte
					ctx.Send(1%workers, buf[:])
				}
				return nil
			}
			for _, msg := range ctx.Received() {
				count := int64(binary.LittleEndian.Uint64(msg.Payload))
				atomic.StoreInt64(&lastSeen, count)
				if count+1 < hops {
					var buf [8]byte
					binary.LittleEndian.PutUint64(buf[:], uint64(count+1))
					ctx.Send((ctx.Worker()+1)%workers, buf[:])
				}
			}
			return nil
		})
	})
	defer stop()

	stats, err := hub.RunJob(context.Background(), JobSpec{NumWorkers: workers, MinNodes: 2, PlanFor: func(lo, hi int) ([]byte, error) { return nil, nil }}, JobHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&lastSeen); got != hops-1 {
		t.Fatalf("token count = %d, want %d", got, hops-1)
	}
	if stats.Supersteps != hops+1 {
		t.Fatalf("Supersteps = %d, want %d", stats.Supersteps, hops+1)
	}
	if len(stats.Results) != 2 {
		t.Fatalf("results from %d nodes, want 2", len(stats.Results))
	}
	if stats.WireBytes == 0 {
		t.Fatal("hub moved zero wire bytes")
	}
}

// sidebandProg exercises BarrierHooks end to end: every instance emits its
// local worker count, the coordinator sums the counts, and every instance
// checks the broadcast equals the cluster-wide worker total.
type sidebandProg struct {
	lo, hi, n int
	bad       atomic.Int64
}

func (p *sidebandProg) Compute(ctx *Context) error {
	if ctx.Superstep() >= 2 {
		ctx.VoteToHalt()
	}
	return nil
}

func (p *sidebandProg) EmitSideband(step int) ([]byte, error) {
	return binary.AppendUvarint(nil, uint64(p.hi-p.lo)), nil
}

func (p *sidebandProg) ApplySideband(step int, data []byte) error {
	got, _ := binary.Uvarint(data)
	if int(got) != p.n {
		p.bad.Add(1)
		return fmt.Errorf("broadcast says %d workers, want %d", got, p.n)
	}
	return nil
}

func TestTCPSideband(t *testing.T) {
	const workers = 5
	var progMu sync.Mutex
	var progs []*sidebandProg
	hub, stop := startCluster(t, 2, 4, func(job *NodeJob) Program {
		p := &sidebandProg{lo: job.Lo, hi: job.Hi, n: job.NumWorkers}
		progMu.Lock()
		progs = append(progs, p)
		progMu.Unlock()
		return p
	})
	defer stop()

	var sum atomic.Int64
	hooks := JobHooks{
		OnSideband: func(step, lo, hi int, data []byte) error {
			n, _ := binary.Uvarint(data)
			sum.Add(int64(n))
			return nil
		},
		Broadcast: func(step int) ([]byte, error) {
			return binary.AppendUvarint(nil, uint64(workers)), nil
		},
	}
	stats, err := hub.RunJob(context.Background(), JobSpec{NumWorkers: workers, MinNodes: 2, PlanFor: func(lo, hi int) ([]byte, error) { return nil, nil }}, hooks)
	if err != nil {
		t.Fatal(err)
	}
	// Every superstep's sidebands sum to the worker total.
	if want := int64(workers * stats.Supersteps); sum.Load() != want {
		t.Fatalf("sideband sum = %d, want %d", sum.Load(), want)
	}
	progMu.Lock()
	defer progMu.Unlock()
	for _, p := range progs {
		if p.bad.Load() != 0 {
			t.Fatal("a node saw a wrong broadcast")
		}
	}
}

// TestTCPNodeErrorFailsJob: a compute error on one node fails the whole
// job at the hub with the node's error text, and the cluster stays usable
// for the next job.
func TestTCPNodeErrorFailsJob(t *testing.T) {
	var failOnce atomic.Bool
	failOnce.Store(true)
	hub, stop := startCluster(t, 2, 2, func(job *NodeJob) Program {
		return ProgramFunc(func(ctx *Context) error {
			if ctx.Worker() == job.Lo && job.Lo > 0 && ctx.Superstep() == 1 && failOnce.CompareAndSwap(true, false) {
				return fmt.Errorf("synthetic failure on worker %d", ctx.Worker())
			}
			if ctx.Superstep() >= 3 {
				ctx.VoteToHalt()
			}
			return nil
		})
	})
	defer stop()

	spec := JobSpec{NumWorkers: 4, MinNodes: 2, PlanFor: func(lo, hi int) ([]byte, error) { return nil, nil }}
	_, err := hub.RunJob(context.Background(), spec, JobHooks{})
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Fatalf("err = %v, want synthetic failure", err)
	}

	// The failed node redials with backoff; once both are back the next
	// job (a fresh epoch) succeeds and stale frames are rejected.
	waitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hub.WaitNodes(waitCtx, 2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err = hub.RunJob(context.Background(), spec, JobHooks{})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second job after recovery: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
		hub.WaitNodes(waitCtx, 2)
	}
}

// TestTCPKilledNodeFailsJobFast: hard-killing a node's conn mid-job makes
// RunJob return an error promptly (no step-timeout hang).
func TestTCPKilledNodeFailsJobFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(ln, HubOptions{StepTimeout: 30 * time.Second})
	defer hub.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Node 1 computes forever; node 2 slams its conn shut at superstep 2.
	go ServeNode(ctx, ln.Addr().String(), func(job *NodeJob) ([]byte, error) {
		e := New(job.NumWorkers, WithWorkerRange(job.Lo, job.Hi), WithTransport(job.Transport))
		_, err := e.Run(ProgramFunc(func(c *Context) error { return nil }))
		return nil, err
	}, NodeOptions{Name: "steady", Capacity: 1})
	go ServeNode(ctx, ln.Addr().String(), func(job *NodeJob) ([]byte, error) {
		e := New(job.NumWorkers, WithWorkerRange(job.Lo, job.Hi), WithTransport(job.Transport))
		_, err := e.Run(ProgramFunc(func(c *Context) error {
			if c.Superstep() == 2 {
				job.Transport.Close() // simulate a machine dying mid-barrier
			}
			return nil
		}))
		return nil, err
	}, NodeOptions{Name: "doomed", Capacity: 1})
	if err := hub.WaitNodes(ctx, 2); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := hub.RunJob(context.Background(), JobSpec{NumWorkers: 2, MinNodes: 2, PlanFor: func(lo, hi int) ([]byte, error) { return nil, nil }}, JobHooks{})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("job with a killed node reported success")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("RunJob hung after node death")
	}
}

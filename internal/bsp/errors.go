package bsp

import (
	"errors"
	"fmt"
	"time"
)

// The hub classifies job failures into typed errors so callers can decide
// whether a retry is worth anything.  Losing a node mid-barrier or timing
// out a superstep are transient cluster conditions — the coordinator can
// re-wait for quorum, re-plan over the survivors, and go again.  Protocol
// violations (future epochs, malformed frames, unroutable messages) and
// node-reported engine errors are deterministic and stay plain errors: a
// retry would only reproduce them.

// NodeLostError reports that a node's connection died (or it violated the
// barrier) at a superstep.  Retryable: the survivors can take over.
type NodeLostError struct {
	Node uint64 // hub-assigned node id
	Name string // node's self-reported name, when known
	Step int    // superstep at failure; -1 during result collection
	Err  error  // underlying cause
}

func (e *NodeLostError) Error() string {
	who := fmt.Sprintf("node %d", e.Node)
	if e.Name != "" {
		who = fmt.Sprintf("node %d (%s)", e.Node, e.Name)
	}
	if e.Step < 0 {
		return fmt.Sprintf("bsp: lost %s while collecting results: %v", who, e.Err)
	}
	return fmt.Sprintf("bsp: lost %s at superstep %d: %v", who, e.Step, e.Err)
}

func (e *NodeLostError) Unwrap() error   { return e.Err }
func (e *NodeLostError) Retryable() bool { return true }

// StepTimeoutError reports that a node failed to reach the superstep
// barrier within the hub's StepTimeout.  Retryable: a wedged or
// partitioned node is dropped and the survivors re-plan.
type StepTimeoutError struct {
	Node    uint64
	Name    string
	Step    int
	Timeout time.Duration
}

func (e *StepTimeoutError) Error() string {
	who := fmt.Sprintf("node %d", e.Node)
	if e.Name != "" {
		who = fmt.Sprintf("node %d (%s)", e.Node, e.Name)
	}
	return fmt.Sprintf("bsp: %s missed the superstep %d barrier within %v", who, e.Step, e.Timeout)
}

func (e *StepTimeoutError) Retryable() bool { return true }

// AbortReason is the machine-readable cause carried in a frameAbort, so
// workers can log why their job died without parsing prose.
type AbortReason byte

const (
	AbortUnknown     AbortReason = 0
	AbortNodeLost    AbortReason = 1 // a participant's conn died or left the barrier
	AbortStepTimeout AbortReason = 2 // a participant missed the barrier deadline
	AbortCancelled   AbortReason = 3 // the coordinator's context was cancelled
	AbortProtocol    AbortReason = 4 // a frame violated the wire protocol
	AbortCoordinator AbortReason = 5 // the coordinator's own hooks failed
)

func (r AbortReason) String() string {
	switch r {
	case AbortNodeLost:
		return "node-lost"
	case AbortStepTimeout:
		return "step-timeout"
	case AbortCancelled:
		return "cancelled"
	case AbortProtocol:
		return "protocol"
	case AbortCoordinator:
		return "coordinator"
	default:
		return "unknown"
	}
}

// AbortError is the node-side error for a job the hub aborted, carrying
// the structured reason code off the wire.
type AbortError struct {
	Code   AbortReason
	Reason string
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("bsp: job aborted by hub [%s]: %s", e.Code, e.Reason)
}

// Retryable: an abort reaching a healthy node usually means some *other*
// participant failed, so the job as a whole may succeed on retry.  The
// exception is a protocol abort — a version or framing mismatch is
// deterministic and a retry would only reproduce it.
func (e *AbortError) Retryable() bool { return e.Code != AbortProtocol }

// abortReasonFor maps a gathered job failure to the code broadcast to
// workers when the abort site has no more specific knowledge.
func abortReasonFor(err error) AbortReason {
	var nl *NodeLostError
	var st *StepTimeoutError
	switch {
	case errors.As(err, &st):
		return AbortStepTimeout
	case errors.As(err, &nl):
		return AbortNodeLost
	default:
		return AbortUnknown
	}
}

// Retryable reports whether err (anywhere in its chain) is a transient
// cluster failure worth re-planning and retrying.
func Retryable(err error) bool {
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}

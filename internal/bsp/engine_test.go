package bsp

import (
	"encoding/binary"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestHaltImmediately: all workers halt in step 0 without sending; the run
// takes exactly one superstep.
func TestHaltImmediately(t *testing.T) {
	e := New(4)
	m, err := e.Run(ProgramFunc(func(ctx *Context) error {
		ctx.VoteToHalt()
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Supersteps != 1 {
		t.Fatalf("Supersteps = %d, want 1", m.Supersteps)
	}
	if m.Messages != 0 {
		t.Fatalf("Messages = %d, want 0", m.Messages)
	}
}

// TestTokenRing passes a counter token around a ring of workers; each hop
// is one superstep, verifying delivery, reactivation, and termination.
func TestTokenRing(t *testing.T) {
	const workers, hops = 5, 12
	e := New(workers)
	var lastSeen int64 = -1
	m, err := e.Run(ProgramFunc(func(ctx *Context) error {
		ctx.VoteToHalt()
		if ctx.Superstep() == 0 {
			if ctx.Worker() == 0 {
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], 0)
				ctx.Send(1%workers, buf[:])
			}
			return nil
		}
		for _, msg := range ctx.Received() {
			count := int64(binary.LittleEndian.Uint64(msg.Payload))
			atomic.StoreInt64(&lastSeen, count)
			if count+1 < hops {
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], uint64(count+1))
				ctx.Send((ctx.Worker()+1)%workers, buf[:])
			}
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if lastSeen != hops-1 {
		t.Fatalf("token count = %d, want %d", lastSeen, hops-1)
	}
	// 1 seed step + hops delivery steps.
	if m.Supersteps != hops+1 {
		t.Fatalf("Supersteps = %d, want %d", m.Supersteps, hops+1)
	}
	if m.Messages != hops {
		t.Fatalf("Messages = %d, want %d", m.Messages, hops)
	}
}

// TestAllToAll has every worker message every other worker once and halts.
func TestAllToAll(t *testing.T) {
	const workers = 6
	e := New(workers)
	var received int64
	m, err := e.Run(ProgramFunc(func(ctx *Context) error {
		switch ctx.Superstep() {
		case 0:
			for w := 0; w < workers; w++ {
				if w != ctx.Worker() {
					ctx.Send(w, []byte{byte(ctx.Worker())})
				}
			}
		case 1:
			atomic.AddInt64(&received, int64(len(ctx.Received())))
		}
		ctx.VoteToHalt()
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(workers * (workers - 1))
	if received != want {
		t.Fatalf("received = %d, want %d", received, want)
	}
	if m.Bytes != want {
		t.Fatalf("Bytes = %d, want %d", m.Bytes, want)
	}
}

// TestComputeError propagates worker errors.
func TestComputeError(t *testing.T) {
	e := New(3)
	boom := errors.New("boom")
	_, err := e.Run(ProgramFunc(func(ctx *Context) error {
		if ctx.Worker() == 2 {
			return boom
		}
		ctx.VoteToHalt()
		return nil
	}))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

// TestMaxSupersteps guards non-termination.
func TestMaxSupersteps(t *testing.T) {
	e := New(2, WithMaxSupersteps(5))
	_, err := e.Run(ProgramFunc(func(ctx *Context) error {
		ctx.Send(1-ctx.Worker(), []byte("ping")) // never halts
		return nil
	}))
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v, want superstep bound error", err)
	}
}

// TestSendOutOfRange: a worker panic (here from an out-of-range Send) is
// reported as a failed-task error, not a process crash.
func TestSendOutOfRange(t *testing.T) {
	e := New(2)
	_, err := e.Run(ProgramFunc(func(ctx *Context) error {
		ctx.Send(7, nil)
		return nil
	}))
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want worker panic error", err)
	}
}

// TestCostModelAddsOverhead verifies modeled time exceeds critical path
// when a cost model is installed, and equals it otherwise.
func TestCostModelAddsOverhead(t *testing.T) {
	run := func(opts ...Option) Metrics {
		e := New(3, opts...)
		m, err := e.Run(ProgramFunc(func(ctx *Context) error {
			if ctx.Superstep() == 0 {
				ctx.Send((ctx.Worker()+1)%3, make([]byte, 1<<20))
			}
			ctx.VoteToHalt()
			return nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain := run()
	if plain.ModeledTotal != plain.CriticalPath {
		t.Errorf("zero model: modeled %v != critical path %v",
			plain.ModeledTotal, plain.CriticalPath)
	}
	modeled := run(WithCostModel(CommodityCluster()))
	if modeled.ModeledTotal <= modeled.CriticalPath {
		t.Errorf("cost model added no overhead: %v <= %v",
			modeled.ModeledTotal, modeled.CriticalPath)
	}
	// 1 MiB at 125 MB/s ≈ 8.4 ms, plus 2 barriers ≥ 500 ms.
	if modeled.ModeledTotal < 500*time.Millisecond {
		t.Errorf("modeled total %v implausibly low", modeled.ModeledTotal)
	}
}

// TestStageStats sanity-checks the per-stage trace.
func TestStageStats(t *testing.T) {
	e := New(2)
	m, err := e.Run(ProgramFunc(func(ctx *Context) error {
		if ctx.Superstep() == 0 && ctx.Worker() == 0 {
			ctx.Send(1, []byte("abc"))
		}
		ctx.VoteToHalt()
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Stages) != m.Supersteps {
		t.Fatalf("Stages len %d != Supersteps %d", len(m.Stages), m.Supersteps)
	}
	if m.Stages[0].Bytes != 3 {
		t.Fatalf("stage 0 bytes = %d, want 3", m.Stages[0].Bytes)
	}
	if m.Stages[0].ActiveWorkers != 2 || m.Stages[1].ActiveWorkers != 1 {
		t.Fatalf("active workers per stage: %d, %d; want 2, 1",
			m.Stages[0].ActiveWorkers, m.Stages[1].ActiveWorkers)
	}
	trace := FormatTrace(m)
	if !strings.Contains(trace, "stage  0") {
		t.Errorf("trace missing stage line:\n%s", trace)
	}
}

// TestWorkerIsolation ensures contexts do not leak between workers.
func TestWorkerIsolation(t *testing.T) {
	const workers = 8
	e := New(workers)
	seen := make([]int64, workers)
	_, err := e.Run(ProgramFunc(func(ctx *Context) error {
		atomic.AddInt64(&seen[ctx.Worker()], 1)
		if ctx.NumWorkers() != workers {
			t.Errorf("NumWorkers = %d", ctx.NumWorkers())
		}
		ctx.VoteToHalt()
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	for w, n := range seen {
		if n != 1 {
			t.Errorf("worker %d ran %d times, want 1", w, n)
		}
	}
}

// TestSequentialWorkersSameResult checks that sequential execution is
// behaviourally identical to concurrent execution.
func TestSequentialWorkersSameResult(t *testing.T) {
	run := func(opts ...Option) Metrics {
		e := New(4, opts...)
		m, err := e.Run(ProgramFunc(func(ctx *Context) error {
			if ctx.Superstep() < 3 {
				ctx.Send((ctx.Worker()+1)%4, []byte{byte(ctx.Superstep())})
			}
			ctx.VoteToHalt()
			return nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	conc := run()
	seq := run(WithSequentialWorkers())
	if conc.Supersteps != seq.Supersteps || conc.Messages != seq.Messages || conc.Bytes != seq.Bytes {
		t.Fatalf("sequential run diverged: %+v vs %+v", seq, conc)
	}
}

// TestSequentialWorkerPanicSurfaces checks panic recovery in the serial path.
func TestSequentialWorkerPanicSurfaces(t *testing.T) {
	e := New(2, WithSequentialWorkers())
	_, err := e.Run(ProgramFunc(func(ctx *Context) error {
		if ctx.Worker() == 1 {
			panic("kaboom")
		}
		ctx.VoteToHalt()
		return nil
	}))
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want panic error", err)
	}
}

package bsp

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// frameSeeds are the checked-in corpus for FuzzDecodeFrame: well-formed
// frames of each type, a zero-length header, an over-limit length, and
// truncated payloads.  Refresh testdata/fuzz with
// WRITE_FUZZ_CORPUS=1 go test ./internal/bsp -run TestWriteFuzzCorpus.
func frameSeeds() [][]byte {
	frame := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, payload); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	step := appendBytesField(nil, []byte("sideband"))
	step = appendMessages(step, []Message{{From: 1, To: 2, Payload: []byte("m")}})
	return [][]byte{
		nil,
		{0, 0, 0, 0},             // zero length
		{0xFF, 0xFF, 0xFF, 0xFF}, // over every cap
		frame(frameHello, []byte{protoVersion, 4}),
		frame(frameStep, step),
		frame(frameAbort, append([]byte{0, byte(AbortProtocol)}, "reason"...)),
		frame(frameJobResult, nil),
		frame(frameStep, step)[:7], // truncated payload
	}
}

// FuzzDecodeFrame drives arbitrary bytes through the frame reader and
// the step-payload field decoder.  The reader must fail cleanly on
// garbage (no panic, no over-allocation past the cap), and a frame it
// accepts must survive a write/read round trip.
func FuzzDecodeFrame(f *testing.F) {
	for _, s := range frameSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrameCapped(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-framing accepted frame: %v", err)
		}
		typ2, payload2, err := readFrameCapped(&buf, 1<<16)
		if err != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("frame round trip diverged: %v", err)
		}
		// Step frames carry the layered field encoding; the field reader
		// must reject garbage without panicking too.
		r := &fieldReader{buf: payload}
		if _, err := r.bytes(); err == nil {
			_, _ = r.readMessages()
		}
	})
}

// TestWriteFuzzCorpus refreshes the checked-in seed corpus from
// frameSeeds.  Guarded so a normal test run never rewrites testdata.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to refresh testdata/fuzz seeds")
	}
	writeFuzzCorpus(t, "FuzzDecodeFrame", frameSeeds())
}

func writeFuzzCorpus(t *testing.T, target string, seeds [][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

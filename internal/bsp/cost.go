package bsp

import (
	"fmt"
	"strings"
	"time"
)

// CostModel converts observed superstep behaviour into a modeled wall-clock
// time including the platform overheads that dominate the paper's Fig. 5:
// shuffle data transfer over a commodity network, per-task scheduling, and
// barrier coordination.  The zero value models a zero-overhead platform, in
// which case the modeled time equals the real critical-path compute time.
type CostModel struct {
	// BytesPerSecond is the per-machine network bandwidth used for shuffle
	// transfer; 0 means infinite bandwidth.
	BytesPerSecond float64
	// LatencyPerMessage is the fixed cost per message (connection setup,
	// serialisation framing).
	LatencyPerMessage time.Duration
	// TaskOverhead is the scheduler cost to launch one worker task in a
	// superstep (Spark's on-demand task scheduling).
	TaskOverhead time.Duration
	// BarrierOverhead is the per-superstep synchronisation cost.
	BarrierOverhead time.Duration
}

// CommodityCluster returns a cost model loosely calibrated to the paper's
// test bed: 8 Azure E8s v3 VMs on a commodity network.  1 Gbps effective
// shuffle bandwidth per machine, 5 ms per message, 100 ms to schedule a
// task, 250 ms per barrier.  The absolute values only need to be plausible;
// the figures reproduce shapes, not seconds.
func CommodityCluster() CostModel {
	return CostModel{
		BytesPerSecond:    125e6, // 1 Gbps
		LatencyPerMessage: 5 * time.Millisecond,
		TaskOverhead:      100 * time.Millisecond,
		BarrierOverhead:   250 * time.Millisecond,
	}
}

// StageTime models the wall time of one superstep: the barrier cost plus
// the slowest worker's task-launch + compute + its share of shuffle
// traffic.  Transfers of different machines proceed in parallel, so the
// bound is per-worker bytes, not total bytes — the same reasoning the
// paper applies to its per-level merge transfers (Sec. 3.5).
func (c CostModel) StageTime(stage StageStat, active []int, compute []time.Duration, perWorkerBytes, perWorkerMsgs []int64) time.Duration {
	slowest := time.Duration(0)
	for i, w := range active {
		t := c.TaskOverhead + compute[i]
		if c.BytesPerSecond > 0 {
			t += time.Duration(float64(perWorkerBytes[w]) / c.BytesPerSecond * float64(time.Second))
		}
		t += time.Duration(perWorkerMsgs[w]) * c.LatencyPerMessage
		if t > slowest {
			slowest = t
		}
	}
	return c.BarrierOverhead + slowest
}

// FormatTrace renders the stage list as a textual DAG trace, the analogue
// of the paper's Fig. 3 Spark UI screenshot.
func FormatTrace(m Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "BSP trace: %d supersteps, %d messages, %d bytes\n",
		m.Supersteps, m.Messages, m.Bytes)
	for _, s := range m.Stages {
		fmt.Fprintf(&b, "  stage %2d: workers=%2d msgs=%4d bytes=%10d compute(max)=%v modeled=%v\n",
			s.Superstep, s.ActiveWorkers, s.Messages, s.Bytes,
			s.MaxCompute.Round(time.Microsecond), s.Modeled.Round(time.Microsecond))
	}
	return b.String()
}

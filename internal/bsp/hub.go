package bsp

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/faultpoint"
)

// Hub is the coordinator side of the distributed barrier: it accepts node
// registrations, fans a job out over the registered nodes as contiguous
// worker ranges, and runs the per-superstep barrier — collecting every
// node's frameStep, applying sidebands, routing messages between worker
// ranges, deciding the global halt consensus, and answering each node with
// a frameStepOK through its per-peer write buffer.
//
// The hub is a star: every message between worker ranges crosses it.  That
// gives it the complete picture the halt consensus and the merge
// scheduling need, at the price of two hops per remote message — the same
// trade the paper's Spark driver makes for shuffle scheduling.
type Hub struct {
	ln   net.Listener
	opts HubOptions

	mu     sync.Mutex
	peers  map[uint64]*hubPeer
	nextID uint64
	epoch  uint64
	closed bool

	jobMu sync.Mutex // serialises RunJob: one distributed job at a time
}

// hubPeer is one registered node connection.
type hubPeer struct {
	id       uint64
	name     string
	addr     string
	capacity int
	conn     net.Conn
	r        *fieldBufReader
	w        *bufWriter

	// Job-scoped worker range, set by RunJob.
	lo, hi int
}

// bufWriter is a per-peer buffered frame writer with byte accounting:
// a barrier's frames batch up here and hit the socket on one flush.
type bufWriter struct {
	w *bufio.Writer
	n int64
}

func newBufWriter(conn net.Conn) *bufWriter {
	return &bufWriter{w: bufio.NewWriterSize(conn, 1<<16)}
}

func (b *bufWriter) writeFrame(typ byte, payload []byte) error {
	b.n += int64(len(payload) + frameHeaderLen)
	return writeFrame(b.w, typ, payload)
}

func (b *bufWriter) flush() error { return b.w.Flush() }

// fieldBufReader is a per-peer buffered frame reader with byte accounting.
type fieldBufReader struct {
	r *bufio.Reader
	n int64
}

func newFieldBufReader(conn net.Conn) *fieldBufReader {
	return &fieldBufReader{r: bufio.NewReaderSize(conn, 1<<16)}
}

func (f *fieldBufReader) readFrame() (byte, []byte, error) {
	typ, body, err := readFrame(f.r)
	f.n += int64(len(body) + frameHeaderLen)
	return typ, body, err
}

// readHello reads the pre-registration frame under the hello size cap, so
// an arbitrary conn to the cluster port cannot demand a gigabyte buffer
// by lying in its length prefix.
func (f *fieldBufReader) readHello() (byte, []byte, error) {
	typ, body, err := readFrameCapped(f.r, maxHelloPayload)
	f.n += int64(len(body) + frameHeaderLen)
	return typ, body, err
}

// NodeInfo describes a registered node.
type NodeInfo struct {
	ID       uint64 `json:"id"`
	Name     string `json:"name,omitempty"`
	Addr     string `json:"addr"`
	Capacity int    `json:"capacity"`
	// Lo and Hi are the worker range hosted in the most recent job;
	// both are zero for a node that has not run one yet.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// HubOptions configures a Hub.
type HubOptions struct {
	// StepTimeout bounds how long the hub waits for one node's superstep
	// frame before failing the job (default 2 minutes).  A killed node's
	// conn fails immediately; the timeout catches hangs.
	StepTimeout time.Duration
	// HandshakeTimeout bounds the hello exchange (default 10 seconds).
	HandshakeTimeout time.Duration
	// Logf, when set, receives lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (o HubOptions) withDefaults() HubOptions {
	out := o
	if out.StepTimeout <= 0 {
		out.StepTimeout = 2 * time.Minute
	}
	if out.HandshakeTimeout <= 0 {
		out.HandshakeTimeout = 10 * time.Second
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// NewHub starts a hub accepting node registrations on ln.
func NewHub(ln net.Listener, opts HubOptions) *Hub {
	h := &Hub{ln: ln, opts: opts.withDefaults(), peers: make(map[uint64]*hubPeer)}
	go h.acceptLoop()
	return h
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() net.Addr { return h.ln.Addr() }

// Close stops accepting and drops every registered node.
func (h *Hub) Close() error {
	h.mu.Lock()
	h.closed = true
	peers := make([]*hubPeer, 0, len(h.peers))
	for _, p := range h.peers {
		peers = append(peers, p)
	}
	h.peers = map[uint64]*hubPeer{}
	h.mu.Unlock()
	for _, p := range peers {
		p.conn.Close()
	}
	return h.ln.Close()
}

func (h *Hub) acceptLoop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		go h.handshake(conn)
	}
}

// handshake registers one node conn: hello in, welcome out.
func (h *Hub) handshake(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	conn.SetDeadline(time.Now().Add(h.opts.HandshakeTimeout))
	r := newFieldBufReader(conn)
	typ, body, err := r.readHello()
	if err != nil || typ != frameHello {
		h.opts.Logf("bsp hub: handshake from %s failed: type %d err %v", conn.RemoteAddr(), typ, err)
		conn.Close()
		return
	}
	fr := &fieldReader{buf: body}
	proto, err := fr.uvarint()
	if err != nil || proto != protoVersion {
		h.opts.Logf("bsp hub: %s speaks protocol %d, want %d", conn.RemoteAddr(), proto, protoVersion)
		// Tell the peer why before closing: a mixed-version node decodes
		// this into a typed, non-retryable AbortError instead of seeing a
		// bare connection reset and redialling forever.
		msg := binary.AppendUvarint(nil, 0) // no epoch yet: handshake abort
		msg = append(msg, byte(AbortProtocol))
		msg = fmt.Appendf(msg, "protocol version %d not supported (hub speaks %d)", proto, protoVersion)
		w := newBufWriter(conn)
		if w.writeFrame(frameAbort, msg) == nil {
			w.flush()
		}
		conn.Close()
		return
	}
	capa, err := fr.uvarint()
	if err != nil || capa < 1 {
		conn.Close()
		return
	}
	name := string(fr.rest())

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		conn.Close()
		return
	}
	h.nextID++
	id := h.nextID
	h.mu.Unlock()

	p := &hubPeer{
		id:       id,
		name:     name,
		addr:     conn.RemoteAddr().String(),
		capacity: int(capa),
		conn:     conn,
		r:        r,
		w:        newBufWriter(conn),
	}
	// Complete the welcome exchange before the peer becomes visible to
	// RunJob, so only one goroutine ever writes a given peer's buffer.
	welcome := binary.AppendUvarint(nil, p.id)
	if err := p.w.writeFrame(frameWelcome, welcome); err != nil || p.w.flush() != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		conn.Close()
		return
	}
	h.peers[p.id] = p
	h.mu.Unlock()
	h.opts.Logf("bsp hub: node %d (%q, %s) joined with capacity %d", p.id, name, p.addr, capa)
}

// writePeer ships one frame to p and flushes, under the step-timeout
// write deadline: a peer that stopped draining its socket (wedged
// process, full kernel buffer) fails the job instead of blocking the hub
// forever — StepTimeout alone only covers reads.
func (h *Hub) writePeer(p *hubPeer, typ byte, payload []byte) error {
	p.conn.SetWriteDeadline(time.Now().Add(h.opts.StepTimeout))
	defer p.conn.SetWriteDeadline(time.Time{})
	if err := p.w.writeFrame(typ, payload); err != nil {
		return err
	}
	return p.w.flush()
}

func (h *Hub) dropPeer(p *hubPeer, why string) {
	h.mu.Lock()
	_, present := h.peers[p.id]
	delete(h.peers, p.id)
	h.mu.Unlock()
	p.conn.Close()
	if present {
		h.opts.Logf("bsp hub: dropped node %d (%s): %s", p.id, p.addr, why)
	}
}

// peerIOErr classifies a raw read/write failure on p's conn: a deadline
// miss is a StepTimeoutError, anything else means the node is gone.
func (h *Hub) peerIOErr(p *hubPeer, step int, err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return &StepTimeoutError{Node: p.id, Name: p.name, Step: step, Timeout: h.opts.StepTimeout}
	}
	return &NodeLostError{Node: p.id, Name: p.name, Step: step, Err: err}
}

// Nodes returns the registered nodes, ordered by id.
func (h *Hub) Nodes() []NodeInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]NodeInfo, 0, len(h.peers))
	for _, p := range h.peers {
		out = append(out, NodeInfo{ID: p.id, Name: p.name, Addr: p.addr, Capacity: p.capacity, Lo: p.lo, Hi: p.hi})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumNodes returns the current live membership count.
func (h *Hub) NumNodes() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.peers)
}

// Epoch returns the epoch of the most recently started job.
func (h *Hub) Epoch() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epoch
}

// WaitNodes blocks until at least min nodes are registered or ctx ends.
func (h *Hub) WaitNodes(ctx context.Context, min int) error {
	for {
		h.mu.Lock()
		n, closed := len(h.peers), h.closed
		h.mu.Unlock()
		if closed {
			return errors.New("bsp: hub closed")
		}
		if n >= min {
			return nil
		}
		if !sleepCtx(ctx, 20*time.Millisecond) {
			return fmt.Errorf("bsp: waiting for %d cluster nodes (have %d): %w", min, n, ctx.Err())
		}
	}
}

// JobSpec describes one distributed job for RunJob.
type JobSpec struct {
	// NumWorkers is the job's total worker count; the hub splits
	// [0, NumWorkers) across the registered nodes by capacity.
	NumWorkers int
	// MinNodes refuses to start on fewer registered nodes (minimum 1).
	MinNodes int
	// PlanFor returns the opaque job payload for the node hosting
	// workers [lo, hi).
	PlanFor func(lo, hi int) ([]byte, error)
}

// JobHooks are the coordinator's sideband callbacks, called on the
// RunJob goroutine in deterministic (step, then worker-range) order.
type JobHooks struct {
	// OnSideband receives the sideband payload of the node hosting
	// [lo, hi) for one superstep.  The data aliases a frame buffer and
	// must not be retained.
	OnSideband func(step, lo, hi int, data []byte) error
	// Broadcast produces the coordinator sideband delivered to every
	// node at this superstep's barrier, after all OnSideband calls.
	Broadcast func(step int) ([]byte, error)
}

// NodeResult is one node's final job payload.
type NodeResult struct {
	Node    NodeInfo
	Lo, Hi  int
	Payload []byte
}

// JobStats summarises a completed distributed job.
type JobStats struct {
	Epoch      uint64
	Supersteps int
	WireBytes  int64 // frame bytes the hub moved for this job
	Results    []NodeResult
}

// RunJob executes one distributed job over the currently registered
// nodes.  It assigns worker ranges, ships plans, drives the barrier until
// halt consensus, and collects every node's result payload.  On any node
// failure the job is aborted cluster-wide and an error returned; the
// failed node is deregistered so a reconnecting replacement can rejoin.
func (h *Hub) RunJob(ctx context.Context, spec JobSpec, hooks JobHooks) (*JobStats, error) {
	h.jobMu.Lock()
	defer h.jobMu.Unlock()

	minNodes := spec.MinNodes
	if minNodes < 1 {
		minNodes = 1
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, errors.New("bsp: hub closed")
	}
	h.epoch++
	epoch := h.epoch
	all := make([]*hubPeer, 0, len(h.peers))
	for _, p := range h.peers {
		all = append(all, p)
	}
	h.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	if len(all) < minNodes {
		return nil, fmt.Errorf("bsp: job needs %d cluster nodes, %d registered", minNodes, len(all))
	}

	// Range assignment mutates peer lo/hi, which Nodes() reads under mu.
	h.mu.Lock()
	peers := assignRanges(all, spec.NumWorkers)
	h.mu.Unlock()
	if len(peers) == 0 {
		return nil, errors.New("bsp: no node received a worker range")
	}
	stats := &JobStats{Epoch: epoch}

	// Ship the job plans.
	for _, p := range peers {
		plan, err := spec.PlanFor(p.lo, p.hi)
		if err != nil {
			return nil, fmt.Errorf("bsp: building plan for workers [%d, %d): %w", p.lo, p.hi, err)
		}
		start := binary.AppendUvarint(nil, epoch)
		start = binary.AppendUvarint(start, uint64(spec.NumWorkers))
		start = binary.AppendUvarint(start, uint64(p.lo))
		start = binary.AppendUvarint(start, uint64(p.hi))
		start = append(start, plan...)
		err = h.writePeer(p, frameJobStart, start)
		if err != nil {
			lost := h.peerIOErr(p, 0, err)
			h.abortJob(epoch, peers, abortReasonFor(lost), fmt.Sprintf("plan delivery to node %d failed", p.id))
			h.dropPeer(p, "job start write failed")
			return nil, lost
		}
	}

	// Barrier loop.
	type stepIn struct {
		localActive bool
		sideband    []byte
		msgs        []Message
		result      *nodeResultFrame // set when the node sent frameJobResult instead
	}
	for step := 0; ; step++ {
		if err := ctx.Err(); err != nil {
			h.abortJob(epoch, peers, AbortCancelled, "job cancelled")
			return nil, err
		}
		ins := make([]stepIn, len(peers))
		if err := h.gatherFrames(epoch, step, peers, func(i int, fr *frameIn) {
			ins[i] = stepIn{localActive: fr.localActive, sideband: fr.sideband, msgs: fr.msgs, result: fr.result}
		}); err != nil {
			h.abortJob(epoch, peers, abortReasonFor(err), err.Error())
			return nil, err
		}
		for i, p := range peers {
			if r := ins[i].result; r != nil {
				// A node that bailed out of the barrier with an engine
				// error reported it itself — that is deterministic node
				// work failing, not cluster weather, so it stays a plain
				// (non-retryable) error.
				err := fmt.Errorf("bsp: node %d left the barrier at superstep %d: %s", p.id, step, r.errMsg)
				if r.errMsg == "" {
					err = fmt.Errorf("bsp: node %d finished at superstep %d while the job was still running", p.id, step)
				}
				h.abortJob(epoch, peers, AbortNodeLost, err.Error())
				return nil, err
			}
		}

		// Sidebands, in worker-range order for deterministic absorption.
		if hooks.OnSideband != nil {
			for i, p := range peers {
				if err := hooks.OnSideband(step, p.lo, p.hi, ins[i].sideband); err != nil {
					h.abortJob(epoch, peers, AbortCoordinator, err.Error())
					return nil, fmt.Errorf("bsp: superstep %d sideband from node %d: %w", step, p.id, err)
				}
			}
		}
		var broadcast []byte
		if hooks.Broadcast != nil {
			b, err := hooks.Broadcast(step)
			if err != nil {
				h.abortJob(epoch, peers, AbortCoordinator, err.Error())
				return nil, fmt.Errorf("bsp: superstep %d broadcast: %w", step, err)
			}
			broadcast = b
		}

		// Route messages between worker ranges.
		routed := 0
		outPer := make([][]Message, len(peers))
		for i := range peers {
			for _, msg := range ins[i].msgs {
				j := peerForWorker(peers, msg.To)
				if j < 0 {
					err := fmt.Errorf("bsp: superstep %d: message for worker %d outside every range", step, msg.To)
					h.abortJob(epoch, peers, AbortProtocol, err.Error())
					return nil, err
				}
				outPer[j] = append(outPer[j], msg)
				routed++
			}
		}
		anyActive := routed > 0
		for i := range peers {
			anyActive = anyActive || ins[i].localActive
		}
		halt := !anyActive

		// Answer every node.
		for i, p := range peers {
			reply := binary.AppendUvarint(nil, epoch)
			reply = binary.AppendUvarint(reply, uint64(step))
			var flags byte
			if halt {
				flags |= 1
			}
			reply = append(reply, flags)
			reply = appendBytesField(reply, broadcast)
			reply = appendMessages(reply, outPer[i])
			err := h.writePeer(p, frameStepOK, reply)
			if err != nil {
				lost := h.peerIOErr(p, step, err)
				h.abortJob(epoch, peers, abortReasonFor(lost), fmt.Sprintf("barrier reply to node %d failed", p.id))
				h.dropPeer(p, "barrier reply write failed")
				return nil, lost
			}
		}
		stats.Supersteps = step + 1
		if halt {
			break
		}
	}

	// Collect results.
	results := make([]*nodeResultFrame, len(peers))
	if err := h.gatherResults(epoch, peers, results); err != nil {
		h.abortJob(epoch, peers, abortReasonFor(err), err.Error())
		return nil, err
	}
	for i, p := range peers {
		if results[i].errMsg != "" {
			return nil, fmt.Errorf("bsp: node %d failed: %s", p.id, results[i].errMsg)
		}
		stats.Results = append(stats.Results, NodeResult{
			Node:    NodeInfo{ID: p.id, Name: p.name, Addr: p.addr, Capacity: p.capacity},
			Lo:      p.lo,
			Hi:      p.hi,
			Payload: results[i].payload,
		})
	}
	for _, p := range peers {
		stats.WireBytes += p.w.n + p.r.n
		p.w.n, p.r.n = 0, 0
	}
	return stats, nil
}

// frameIn is one node's decoded barrier frame.
type frameIn struct {
	localActive bool
	sideband    []byte
	msgs        []Message
	result      *nodeResultFrame
}

type nodeResultFrame struct {
	errMsg  string
	payload []byte
}

// gatherFrames reads one current-epoch frameStep (or frameJobResult) from
// every peer concurrently, dropping stale-epoch stragglers.
func (h *Hub) gatherFrames(epoch uint64, step int, peers []*hubPeer, set func(i int, fr *frameIn)) error {
	errs := make([]error, len(peers))
	frames := make([]*frameIn, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *hubPeer) {
			defer wg.Done()
			frames[i], errs[i] = h.readPeerFrame(epoch, step, p)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			h.dropPeer(peers[i], err.Error())
			if Retryable(err) {
				return err // typed and self-describing: NodeLost / StepTimeout
			}
			return fmt.Errorf("bsp: node %d at superstep %d: %w", peers[i].id, step, err)
		}
	}
	for i := range peers {
		set(i, frames[i])
	}
	return nil
}

// readPeerFrame reads frames from p until it sees the current epoch's
// frameStep for step (or the node's frameJobResult), enforcing the step
// timeout.  A negative step means only a job result is acceptable.
func (h *Hub) readPeerFrame(epoch uint64, step int, p *hubPeer) (*frameIn, error) {
	if o := faultpoint.Eval(FaultHubRead, step); o.Fired() {
		switch o.Act {
		case faultpoint.Drop:
			p.conn.Close()
		case faultpoint.Delay:
			time.Sleep(o.Sleep)
		case faultpoint.Error:
			return nil, &NodeLostError{Node: p.id, Name: p.name, Step: step, Err: o.Err}
		}
	}
	p.conn.SetReadDeadline(time.Now().Add(h.opts.StepTimeout))
	defer p.conn.SetReadDeadline(time.Time{})
	for {
		typ, body, err := p.r.readFrame()
		if err != nil {
			// The raw read failing means the node is gone (or wedged past
			// the deadline); protocol decode failures below stay plain.
			return nil, h.peerIOErr(p, step, err)
		}
		fr := &fieldReader{buf: body}
		gotEpoch, err := fr.uvarint()
		if err != nil {
			return nil, err
		}
		if gotEpoch < epoch {
			continue // straggler from an aborted job: drop
		}
		if gotEpoch > epoch {
			return nil, fmt.Errorf("frame from future epoch %d (hub at %d)", gotEpoch, epoch)
		}
		switch typ {
		case frameStep:
			gotStep, err := fr.uvarint()
			if err != nil {
				return nil, err
			}
			if step < 0 {
				return nil, fmt.Errorf("superstep %d frame after the job halted", gotStep)
			}
			if int(gotStep) < step {
				continue // duplicate of an already-consumed barrier: drop
			}
			if int(gotStep) != step {
				return nil, fmt.Errorf("superstep %d frame while hub expects %d", gotStep, step)
			}
			flags, err := fr.byteVal()
			if err != nil {
				return nil, err
			}
			sideband, err := fr.bytes()
			if err != nil {
				return nil, err
			}
			msgs, err := fr.readMessages()
			if err != nil {
				return nil, err
			}
			return &frameIn{localActive: flags&1 != 0, sideband: sideband, msgs: msgs}, nil
		case frameJobResult:
			errStr, err := fr.bytes()
			if err != nil {
				return nil, err
			}
			return &frameIn{result: &nodeResultFrame{errMsg: string(errStr), payload: append([]byte(nil), fr.rest()...)}}, nil
		default:
			return nil, fmt.Errorf("unexpected frame %d during barrier", typ)
		}
	}
}

// gatherResults reads the final frameJobResult from every peer.
func (h *Hub) gatherResults(epoch uint64, peers []*hubPeer, results []*nodeResultFrame) error {
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *hubPeer) {
			defer wg.Done()
			fr, err := h.readPeerFrame(epoch, -1, p) // results only
			if err == nil && fr.result == nil {
				err = errors.New("expected job result frame")
			}
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = fr.result
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			h.dropPeer(peers[i], err.Error())
			if Retryable(err) {
				return err
			}
			return fmt.Errorf("bsp: collecting result from node %d: %w", peers[i].id, err)
		}
	}
	return nil
}

// abortJob fails the job cluster-wide: every participating peer gets a
// best-effort frameAbort (so blocked engines unblock promptly instead of
// waiting out the step timeout) and is then deregistered and closed.
// Dropping the survivors too is deliberate: a node whose job failed —
// even one that merely received the abort — treats its conn state as
// unknown and re-registers from scratch (see serveNodeConn), so keeping
// the old registration would leave a ghost peer that poisons the next
// job with a dead conn.
func (h *Hub) abortJob(epoch uint64, peers []*hubPeer, code AbortReason, reason string) {
	msg := binary.AppendUvarint(nil, epoch)
	msg = append(msg, byte(code))
	msg = append(msg, reason...)
	for _, p := range peers {
		h.writePeer(p, frameAbort, msg)
	}
	for _, p := range peers {
		h.dropPeer(p, "job aborted: participants re-register")
	}
}

// assignRanges splits n workers across peers proportionally to capacity
// (every participating peer gets at least one).  Peers beyond n are left
// out.  The returned peers have lo/hi set.
func assignRanges(peers []*hubPeer, n int) []*hubPeer {
	if n <= 0 {
		return nil
	}
	use := peers
	if len(use) > n {
		use = use[:n]
	}
	total := 0
	for _, p := range use {
		total += p.capacity
	}
	counts := make([]int, len(use))
	assigned := 0
	for i, p := range use {
		c := n * p.capacity / total
		if c < 1 {
			c = 1
		}
		counts[i] = c
		assigned += c
	}
	// Fix rounding drift: trim from the largest, pad the largest.
	for assigned > n {
		max := 0
		for i := range counts {
			if counts[i] > counts[max] {
				max = i
			}
		}
		if counts[max] <= 1 {
			break
		}
		counts[max]--
		assigned--
	}
	for assigned < n {
		max := 0
		for i, p := range use {
			if p.capacity > use[max].capacity {
				max = i
			}
		}
		counts[max]++
		assigned++
	}
	out := make([]*hubPeer, 0, len(use))
	lo := 0
	for i, p := range use {
		p.lo, p.hi = lo, lo+counts[i]
		lo = p.hi
		out = append(out, p)
	}
	return out
}

// peerForWorker returns the index of the peer hosting worker w, or -1.
func peerForWorker(peers []*hubPeer, w int) int {
	for i, p := range peers {
		if w >= p.lo && w < p.hi {
			return i
		}
	}
	return -1
}

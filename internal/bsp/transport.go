package bsp

import "fmt"

// Transport is the seam between a BSP engine instance and the rest of the
// cluster.  An engine hosts a contiguous range of the job's workers; at the
// end of every superstep it submits one Exchange — the messages leaving its
// range, an opaque sideband payload, and whether any local worker remains
// active — and blocks until the global barrier completes.  The Delivery it
// receives carries the messages addressed to its range from other engine
// instances, the coordinator's sideband reply, and the halt consensus.
//
// LocalTransport closes the loop inside one process (the engine hosts every
// worker, nothing crosses the seam); TCPTransport stretches the same barrier
// over net.Conn frames to a Hub in another process or machine.
type Transport interface {
	// Exchange runs the global barrier for one superstep.  It must not
	// retain ex.Out payload slices after returning: senders reuse their
	// buffers two supersteps later, so a remote transport has to finish
	// writing (or copy) before it hands control back.
	Exchange(ex *Exchange) (Delivery, error)
	// Close releases the transport.  A blocked Exchange on another
	// goroutine returns with an error.
	Close() error
}

// Exchange is one engine instance's contribution to a superstep barrier.
type Exchange struct {
	// Step is the superstep whose outputs are being exchanged.
	Step int
	// Out holds the messages addressed outside the engine's worker range,
	// in send order.  Always empty under LocalTransport.
	Out []Message
	// Sideband is an opaque payload for the coordinator (the euler layer
	// ships Phase 1 absorption batches here).  Nil when the Program does
	// not implement BarrierHooks.
	Sideband []byte
	// LocalActive reports whether any local worker will be active next
	// superstep before remote deliveries are counted: not halted, or
	// holding locally delivered mail.
	LocalActive bool
}

// Delivery is what the barrier hands back to an engine instance.
type Delivery struct {
	// In holds messages addressed to the engine's worker range that were
	// sent by other instances.  Always empty under LocalTransport.
	In []Message
	// Sideband is the coordinator's reply payload, delivered to every
	// instance (the euler layer ships the global visited delta here).
	Sideband []byte
	// Halt is the global consensus: every instance reported inactive and
	// no messages are in flight anywhere, so the run is over.
	Halt bool
	// Wire is the real time this barrier spent on the wire (serialise,
	// transfer, block on the hub); zero for LocalTransport.  The engine
	// folds it into the stage's modeled platform overhead.
	Wire int64 // nanoseconds; int64 keeps Delivery flat for value returns
	// WireBytes counts the frame bytes moved for this barrier.
	WireBytes int64
}

// BarrierHooks is an optional interface a Program may implement to ride the
// transport's per-superstep sideband: EmitSideband is called after the
// superstep's Compute calls finish and before the barrier, ApplySideband
// after the barrier with the coordinator's reply.  Programs that do not
// implement it exchange no sideband.
type BarrierHooks interface {
	EmitSideband(step int) ([]byte, error)
	ApplySideband(step int, data []byte) error
}

// LocalTransport is the in-process transport: the engine hosts the entire
// worker set, every message is delivered through shared memory, and the
// barrier degenerates to the engine's own WaitGroup.  It is the zero-cost
// default installed by New.
type LocalTransport struct{}

// Exchange implements Transport.  With all workers local there is nothing
// to ship; the halt consensus is the instance's own activity.
func (LocalTransport) Exchange(ex *Exchange) (Delivery, error) {
	if len(ex.Out) > 0 {
		return Delivery{}, fmt.Errorf("bsp: local transport cannot route %d remote messages (worker range misconfigured)", len(ex.Out))
	}
	return Delivery{Halt: !ex.LocalActive}, nil
}

// Close implements Transport.
func (LocalTransport) Close() error { return nil }

// Package cluster gives eulerd its multi-process mode: a Coordinator that
// owns the bsp.Hub, fans jobs out over joined worker nodes, and finishes
// Phase 3 locally; and a Worker loop that joins a coordinator and hosts
// engine workers.  The algorithm lives in internal/euler; this package is
// role wiring, spec resolution, and status reporting.
package cluster

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/bsp"
	"repro/internal/euler"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/service/job"
	"repro/internal/spill"
)

// Options configures a Coordinator.
type Options struct {
	// MinNodes is the number of joined worker nodes a job waits for
	// before starting (minimum 1).
	MinNodes int
	// WaitNodes bounds how long a job waits for MinNodes nodes before
	// failing (default 30s).
	WaitNodes time.Duration
	// StepTimeout bounds one barrier round-trip before the job is failed
	// (default 2 minutes; see bsp.HubOptions).
	StepTimeout time.Duration
	// Logf receives lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// Coordinator runs the cluster control plane: node registration, job
// fan-out, barrier/merge scheduling, and result collection.
type Coordinator struct {
	hub      *bsp.Hub
	opts     Options
	jobsRun  atomic.Int64
	jobsFail atomic.Int64
}

// NewCoordinator listens on addr for worker-node joins.
func NewCoordinator(addr string, opts Options) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listening on %s: %w", addr, err)
	}
	if opts.MinNodes < 1 {
		opts.MinNodes = 1
	}
	if opts.WaitNodes <= 0 {
		opts.WaitNodes = 30 * time.Second
	}
	hub := bsp.NewHub(ln, bsp.HubOptions{StepTimeout: opts.StepTimeout, Logf: opts.Logf})
	return &Coordinator{hub: hub, opts: opts}, nil
}

// Addr returns the cluster listen address.
func (c *Coordinator) Addr() net.Addr { return c.hub.Addr() }

// Close shuts the control plane down, dropping every joined node.
func (c *Coordinator) Close() error { return c.hub.Close() }

// Status is the /v1/cluster payload.
type Status struct {
	Role       string         `json:"role"`
	Addr       string         `json:"addr"`
	MinNodes   int            `json:"min_nodes"`
	Nodes      []bsp.NodeInfo `json:"nodes"`
	Epoch      uint64         `json:"epoch"`
	JobsRun    int64          `json:"jobs_run"`
	JobsFailed int64          `json:"jobs_failed"`
}

// ClusterStatus implements the httpapi status hook.
func (c *Coordinator) ClusterStatus() any {
	return Status{
		Role:       "coordinator",
		Addr:       c.hub.Addr().String(),
		MinNodes:   c.opts.MinNodes,
		Nodes:      c.hub.Nodes(),
		Epoch:      c.hub.Epoch(),
		JobsRun:    c.jobsRun.Load(),
		JobsFailed: c.jobsFail.Load(),
	}
}

// Run executes one circuit computation across the cluster and returns the
// Result ready for Phase 3 in this process.
func (c *Coordinator) Run(ctx context.Context, g *graph.Graph, a partition.Assignment, cfg euler.Config) (*euler.Result, error) {
	waitCtx, cancel := context.WithTimeout(ctx, c.opts.WaitNodes)
	err := c.hub.WaitNodes(waitCtx, c.opts.MinNodes)
	cancel()
	if err != nil {
		c.jobsFail.Add(1)
		return nil, err
	}
	res, _, err := euler.RunOverCluster(ctx, c.hub, g, a, cfg, c.opts.MinNodes)
	if err != nil {
		c.jobsFail.Add(1)
		return nil, err
	}
	c.jobsRun.Add(1)
	return res, nil
}

// Runner adapts the Coordinator to the httpapi CircuitRunner seam: it
// resolves a job spec the way the single-process facade does (partition
// count defaults and clamping, LDG assignment, spill placement) and runs
// the job over the cluster instead of in-process goroutines.
type Runner struct {
	Coordinator *Coordinator
}

// RunCircuit implements httpapi.CircuitRunner.
func (r *Runner) RunCircuit(ctx context.Context, spec job.Spec, dir string, g *graph.Graph, emit func(graph.Step) error) (*euler.RunReport, error) {
	parts, err := euler.ResolveParts(spec.Parts, g.NumVertices())
	if err != nil {
		return nil, err
	}
	a := partition.LDG(g, parts, euler.ResolveSeed(spec.Seed))
	mode, err := job.ParseMode(spec.Mode)
	if err != nil {
		return nil, err
	}
	cfg := euler.Config{Mode: mode}
	if spec.Spill {
		ds, err := spill.NewDiskStore(filepath.Join(dir, euler.SpillLogName))
		if err != nil {
			return nil, fmt.Errorf("cluster: opening spill store: %w", err)
		}
		defer ds.Close()
		cfg.Store = ds
	}
	res, err := r.Coordinator.Run(ctx, g, a, cfg)
	if err != nil {
		return nil, err
	}
	if err := res.Registry.Unroll(emit); err != nil {
		return nil, err
	}
	return res.Report, nil
}

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Name identifies the node in coordinator diagnostics.
	Name string
	// Capacity is the number of engine workers this node hosts (its
	// share of the job's partitions); minimum 1.
	Capacity int
	// Sequential runs the node's workers one at a time (Fig. 7 timing).
	Sequential bool
	// Logf receives lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// RunWorker joins the coordinator at addr and hosts engine workers until
// ctx is cancelled, reconnecting with backoff whenever the control
// connection drops.
func RunWorker(ctx context.Context, addr string, opts WorkerOptions) error {
	return bsp.ServeNode(ctx, addr, func(nodeJob *bsp.NodeJob) ([]byte, error) {
		return euler.RunWorkerNode(nodeJob, opts.Sequential)
	}, bsp.NodeOptions{Name: opts.Name, Capacity: opts.Capacity, Logf: opts.Logf})
}

// Package cluster gives eulerd its multi-process mode: a Coordinator that
// owns the bsp.Hub, fans jobs out over joined worker nodes, and finishes
// Phase 3 locally; and a Worker loop that joins a coordinator and hosts
// engine workers.  The algorithm lives in internal/euler; this package is
// role wiring, spec resolution, and status reporting.
package cluster

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bsp"
	"repro/internal/euler"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/service/job"
	"repro/internal/spill"
)

// Options configures a Coordinator.
type Options struct {
	// MinNodes is the number of joined worker nodes a job waits for
	// before starting (minimum 1).
	MinNodes int
	// WaitNodes bounds how long a job waits for MinNodes nodes before
	// failing (default 30s).
	WaitNodes time.Duration
	// StepTimeout bounds one barrier round-trip before the job is failed
	// (default 2 minutes; see bsp.HubOptions).
	StepTimeout time.Duration
	// JobRetries is how many times a job is re-executed after a
	// retryable cluster failure (node lost, step timeout).  Each retry
	// re-waits for quorum and re-plans over the surviving membership.
	// 0 disables retries.
	JobRetries int
	// RetryBackoff is the pause before each retry, giving dropped
	// participants time to re-register (default 500ms).
	RetryBackoff time.Duration
	// DegradedLocal, when set, falls back to the in-process engine when
	// quorum cannot be reached within WaitNodes — or when retries are
	// exhausted on a retryable failure — so the job still completes,
	// flagged degraded, instead of failing the client.
	DegradedLocal bool
	// Logf receives lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// Coordinator runs the cluster control plane: node registration, job
// fan-out, barrier/merge scheduling, and result collection.
type Coordinator struct {
	hub          *bsp.Hub
	opts         Options
	jobsRun      atomic.Int64
	jobsFail     atomic.Int64
	jobsRetried  atomic.Int64 // jobs that needed at least one retry
	replans      atomic.Int64 // re-plan events (attempts after the first)
	degradedRuns atomic.Int64 // jobs completed via the in-process fallback

	errMu     sync.Mutex
	lastErr   string
	lastErrAt time.Time
}

// NewCoordinator listens on addr for worker-node joins.
func NewCoordinator(addr string, opts Options) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listening on %s: %w", addr, err)
	}
	if opts.MinNodes < 1 {
		opts.MinNodes = 1
	}
	if opts.WaitNodes <= 0 {
		opts.WaitNodes = 30 * time.Second
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 500 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	hub := bsp.NewHub(ln, bsp.HubOptions{StepTimeout: opts.StepTimeout, Logf: opts.Logf})
	return &Coordinator{hub: hub, opts: opts}, nil
}

// Addr returns the cluster listen address.
func (c *Coordinator) Addr() net.Addr { return c.hub.Addr() }

// Close shuts the control plane down, dropping every joined node.
func (c *Coordinator) Close() error { return c.hub.Close() }

// Status is the /v1/cluster payload.
type Status struct {
	Role          string         `json:"role"`
	Addr          string         `json:"addr"`
	MinNodes      int            `json:"min_nodes"`
	Nodes         []bsp.NodeInfo `json:"nodes"`
	Epoch         uint64         `json:"epoch"`
	JobsRun       int64          `json:"jobs_run"`
	JobsFailed    int64          `json:"jobs_failed"`
	JobsRetried   int64          `json:"jobs_retried"`
	Replans       int64          `json:"replans"`
	DegradedRuns  int64          `json:"degraded_runs"`
	JobRetries    int            `json:"job_retries"`
	DegradedLocal bool           `json:"degraded_local"`
	LastError     string         `json:"last_error,omitempty"`
	LastErrorAt   *time.Time     `json:"last_error_at,omitempty"`
}

// ClusterStatus implements the httpapi status hook.
func (c *Coordinator) ClusterStatus() any {
	s := Status{
		Role:          "coordinator",
		Addr:          c.hub.Addr().String(),
		MinNodes:      c.opts.MinNodes,
		Nodes:         c.hub.Nodes(),
		Epoch:         c.hub.Epoch(),
		JobsRun:       c.jobsRun.Load(),
		JobsFailed:    c.jobsFail.Load(),
		JobsRetried:   c.jobsRetried.Load(),
		Replans:       c.replans.Load(),
		DegradedRuns:  c.degradedRuns.Load(),
		JobRetries:    c.opts.JobRetries,
		DegradedLocal: c.opts.DegradedLocal,
	}
	c.errMu.Lock()
	s.LastError = c.lastErr
	if !c.lastErrAt.IsZero() {
		t := c.lastErrAt
		s.LastErrorAt = &t
	}
	c.errMu.Unlock()
	return s
}

// ClusterMetrics implements the optional httpapi metrics hook: the
// coordinator's counters under the "cluster" key of /v1/metrics.
func (c *Coordinator) ClusterMetrics() map[string]int64 {
	return map[string]int64{
		"jobs_run":      c.jobsRun.Load(),
		"jobs_failed":   c.jobsFail.Load(),
		"jobs_retried":  c.jobsRetried.Load(),
		"replans":       c.replans.Load(),
		"degraded_runs": c.degradedRuns.Load(),
	}
}

// recordError notes a job failure for /v1/cluster's last_error field.
func (c *Coordinator) recordError(err error) {
	c.errMu.Lock()
	c.lastErr = err.Error()
	c.lastErrAt = time.Now()
	c.errMu.Unlock()
}

// RunInfo describes how a cluster job's execution went.
type RunInfo struct {
	// Attempts is the number of execution attempts (1 = first try).
	Attempts int
	// Replans is how many times the partition plan was rebuilt for a
	// retry (attempts after the first).
	Replans int
	// Degraded marks a job completed through the in-process fallback
	// after the cluster could not serve it.
	Degraded bool
}

// Replanner produces the partition assignment for one attempt.  It is
// re-invoked on every retry with the current live node count, so the
// plan is rebuilt against the surviving membership; deterministic
// planners (LDG with a fixed seed and part count) keep retried runs
// byte-identical to the first attempt.
type Replanner func(attempt, liveNodes int) (partition.Assignment, error)

// Run executes one circuit computation across the cluster with a fixed
// assignment and returns the Result ready for Phase 3 in this process.
func (c *Coordinator) Run(ctx context.Context, g *graph.Graph, a partition.Assignment, cfg euler.Config) (*euler.Result, RunInfo, error) {
	return c.RunReplan(ctx, g, cfg, func(int, int) (partition.Assignment, error) { return a, nil })
}

// RunReplan executes one circuit computation across the cluster under the
// coordinator's retry policy.  Each attempt waits for quorum, plans via
// replan, and runs under a fresh hub epoch (the epoch machinery rejects
// stale frames from aborted attempts).  On a retryable failure — a node
// lost mid-barrier or a superstep timeout — it backs off, re-waits for
// quorum, re-plans over the surviving membership, and goes again, up to
// JobRetries times.  With DegradedLocal set, a job the cluster cannot
// serve (no quorum, or retries exhausted on a retryable error) falls back
// to the in-process engine and completes flagged degraded.
func (c *Coordinator) RunReplan(ctx context.Context, g *graph.Graph, cfg euler.Config, replan Replanner) (*euler.Result, RunInfo, error) {
	var info RunInfo
	for attempt := 1; ; attempt++ {
		info.Attempts = attempt
		if attempt > 1 {
			info.Replans++
			c.replans.Add(1)
		}

		waitCtx, cancel := context.WithTimeout(ctx, c.opts.WaitNodes)
		err := c.hub.WaitNodes(waitCtx, c.opts.MinNodes)
		cancel()
		quorum := c.opts.MinNodes
		if err != nil && attempt > 1 {
			// Retries relax quorum: the job already held MinNodes once,
			// so finishing on the survivors beats failing the client.
			if live := c.hub.NumNodes(); live >= 1 {
				c.opts.Logf("cluster: quorum %d unreachable on retry %d; re-planning over %d survivor(s)", c.opts.MinNodes, attempt-1, live)
				quorum, err = live, nil
			}
		}
		if err != nil {
			c.recordError(err)
			if c.opts.DegradedLocal && ctx.Err() == nil {
				return c.runDegraded(g, cfg, &info, replan)
			}
			c.jobsFail.Add(1)
			return nil, info, err
		}

		a, err := replan(attempt, c.hub.NumNodes())
		if err != nil {
			c.jobsFail.Add(1)
			return nil, info, err
		}
		attemptCtx, cancelAttempt := context.WithCancel(ctx)
		res, _, err := euler.RunOverCluster(attemptCtx, c.hub, g, a, cfg, quorum)
		cancelAttempt()
		if err == nil {
			c.jobsRun.Add(1)
			return res, info, nil
		}
		c.recordError(err)

		retryable := bsp.Retryable(err) && ctx.Err() == nil
		if retryable && attempt <= c.opts.JobRetries {
			if attempt == 1 {
				c.jobsRetried.Add(1)
			}
			c.opts.Logf("cluster: attempt %d failed (%v); retrying in %v", attempt, err, c.opts.RetryBackoff)
			if !sleepCtx(ctx, c.opts.RetryBackoff) {
				c.jobsFail.Add(1)
				return nil, info, ctx.Err()
			}
			continue
		}
		if retryable && c.opts.DegradedLocal {
			return c.runDegraded(g, cfg, &info, replan)
		}
		c.jobsFail.Add(1)
		return nil, info, err
	}
}

// runDegraded completes a job the cluster could not serve by running the
// engine in-process over LocalTransport.  The circuit is identical to
// what the cluster would have produced for the same plan; only the
// execution placement degrades.
func (c *Coordinator) runDegraded(g *graph.Graph, cfg euler.Config, info *RunInfo, replan Replanner) (*euler.Result, RunInfo, error) {
	a, err := replan(info.Attempts, 0)
	if err != nil {
		c.jobsFail.Add(1)
		return nil, *info, err
	}
	c.opts.Logf("cluster: falling back to degraded in-process execution")
	res, err := euler.Run(g, a, cfg)
	if err != nil {
		c.jobsFail.Add(1)
		return nil, *info, err
	}
	info.Degraded = true
	c.degradedRuns.Add(1)
	c.jobsRun.Add(1)
	return res, *info, nil
}

// sleepCtx sleeps for d, returning false early if ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Runner adapts the Coordinator to the httpapi CircuitRunner seam: it
// resolves a job spec the way the single-process facade does (partition
// count defaults and clamping, LDG assignment, spill placement) and runs
// the job over the cluster instead of in-process goroutines.
type Runner struct {
	Coordinator *Coordinator
}

// RunCircuit implements httpapi.CircuitRunner.
func (r *Runner) RunCircuit(ctx context.Context, spec job.Spec, dir string, g *graph.Graph, emit func(graph.Step) error) (*euler.RunReport, error) {
	parts, err := euler.ResolveParts(spec.Parts, g.NumVertices())
	if err != nil {
		return nil, err
	}
	seed := euler.ResolveSeed(spec.Seed)
	mode, err := job.ParseMode(spec.Mode)
	if err != nil {
		return nil, err
	}
	cfg := euler.Config{Mode: mode}
	if spec.Spill {
		ds, err := spill.NewDiskStore(filepath.Join(dir, euler.SpillLogName))
		if err != nil {
			return nil, fmt.Errorf("cluster: opening spill store: %w", err)
		}
		defer ds.Close()
		cfg.Store = ds
	}
	// The planner runs once per attempt: a retry rebuilds the LDG
	// assignment and the euler plan from scratch against whatever
	// membership survived.  Part count and seed come from the spec, so
	// the rebuilt plan — and therefore the circuit — is byte-identical
	// across attempts and to a single-process run.
	res, info, err := r.Coordinator.RunReplan(ctx, g, cfg, func(attempt, liveNodes int) (partition.Assignment, error) {
		return partition.LDG(g, parts, seed), nil
	})
	if err != nil {
		return nil, err
	}
	if err := res.Registry.Unroll(emit); err != nil {
		return nil, err
	}
	res.Report.Attempts = info.Attempts
	res.Report.Degraded = info.Degraded
	return res.Report, nil
}

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Name identifies the node in coordinator diagnostics.
	Name string
	// Capacity is the number of engine workers this node hosts (its
	// share of the job's partitions); minimum 1.
	Capacity int
	// Sequential runs the node's workers one at a time (Fig. 7 timing).
	Sequential bool
	// Logf receives lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// RunWorker joins the coordinator at addr and hosts engine workers until
// ctx is cancelled, reconnecting with backoff whenever the control
// connection drops.
func RunWorker(ctx context.Context, addr string, opts WorkerOptions) error {
	return bsp.ServeNode(ctx, addr, func(nodeJob *bsp.NodeJob) ([]byte, error) {
		return euler.RunWorkerNode(nodeJob, opts.Sequential)
	}, bsp.NodeOptions{Name: opts.Name, Capacity: opts.Capacity, Logf: opts.Logf})
}

package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/euler"
	"repro/internal/faultpoint"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/verify"
)

// startTestCluster brings up a coordinator and workers in-process over
// loopback TCP.
func startTestCluster(t *testing.T, workers int, capacity int) (*Coordinator, context.CancelFunc) {
	t.Helper()
	coord, err := NewCoordinator("127.0.0.1:0", Options{
		MinNodes:    workers,
		WaitNodes:   10 * time.Second,
		StepTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < workers; i++ {
		go RunWorker(ctx, coord.Addr().String(), WorkerOptions{
			Name:     fmt.Sprintf("w%d", i),
			Capacity: capacity,
		})
	}
	return coord, func() {
		cancel()
		coord.Close()
	}
}

func collectSteps(t *testing.T, res *euler.Result) []graph.Step {
	t.Helper()
	var steps []graph.Step
	if err := res.Registry.Unroll(func(s graph.Step) error {
		steps = append(steps, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return steps
}

// TestClusterMatchesLocal asserts the tentpole's acceptance criterion: a
// coordinator + workers run over loopback TCPTransport produces exactly
// the circuit the single-process LocalTransport run produces, step for
// step, on every generator family and remote-edge mode.
func TestClusterMatchesLocal(t *testing.T) {
	coord, stop := startTestCluster(t, 2, 4)
	defer stop()

	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"torus", gen.Torus(12, 9)},
		{"cliques", gen.RingOfCliques(6, 5)},
	}
	{
		g, _ := gen.EulerianRMAT(gen.RMATParams{Vertices: 600, AvgDegree: 4, A: 0.57, B: 0.19, C: 0.19, Seed: 7})
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
		}{"rmat", g})
	}

	for _, tc := range graphs {
		for _, mode := range []euler.Mode{euler.ModeCurrent, euler.ModeDedup, euler.ModeProposed} {
			t.Run(fmt.Sprintf("%s/%s", tc.name, mode), func(t *testing.T) {
				a := partition.LDG(tc.g, 8, 1)
				cfg := euler.Config{Mode: mode, Validate: true}

				local, err := euler.Run(tc.g, a, cfg)
				if err != nil {
					t.Fatalf("local run: %v", err)
				}
				want := collectSteps(t, local)

				res, _, err := coord.Run(context.Background(), tc.g, a, cfg)
				if err != nil {
					t.Fatalf("cluster run: %v", err)
				}
				got := collectSteps(t, res)

				if err := verify.Circuit(tc.g, got); err != nil {
					t.Fatalf("cluster circuit invalid: %v", err)
				}
				if len(got) != len(want) {
					t.Fatalf("cluster circuit has %d steps, local %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("step %d differs: cluster %+v, local %+v", i, got[i], want[i])
					}
				}

				// The distributed report must carry the same structural
				// content: every level's partitions reported, real wire
				// traffic observed.
				if res.Report.TreeHeight != local.Report.TreeHeight {
					t.Fatalf("tree height %d vs local %d", res.Report.TreeHeight, local.Report.TreeHeight)
				}
				if len(res.Report.Parts) != len(local.Report.Parts) {
					t.Fatalf("%d part reports vs local %d", len(res.Report.Parts), len(local.Report.Parts))
				}
				if res.Report.BSP.WireBytes == 0 {
					t.Fatal("cluster run reports zero wire bytes")
				}
				if local.Report.BSP.WireBytes != 0 {
					t.Fatal("local run reports nonzero wire bytes")
				}
			})
		}
	}
}

// TestClusterSequentialNodes runs the cluster with per-node sequential
// workers (the Fig. 7 timing configuration) and checks the circuit again.
func TestClusterSequentialNodes(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", Options{MinNodes: 2, WaitNodes: 10 * time.Second, StepTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go RunWorker(ctx, coord.Addr().String(), WorkerOptions{Name: fmt.Sprintf("seq%d", i), Capacity: 3, Sequential: true})
	}

	g := gen.Torus(8, 8)
	a := partition.LDG(g, 6, 1)
	res, _, err := coord.Run(context.Background(), g, a, euler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	steps := collectSteps(t, res)
	if err := verify.Circuit(g, steps); err != nil {
		t.Fatal(err)
	}
}

// TestClusterKilledWorkerFailsCleanly kills one worker node mid-job and
// asserts the coordinator fails the job promptly with an error — no hang,
// no partial circuit.
func TestClusterKilledWorkerFailsCleanly(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", Options{MinNodes: 2, WaitNodes: 10 * time.Second, StepTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	go RunWorker(ctx, coord.Addr().String(), WorkerOptions{Name: "steady", Capacity: 4})
	// The doomed node runs the real euler worker program but cuts its
	// conn at superstep 1 of its first job, mid-merge — the harshest
	// failure point.  Later jobs (after it rejoins) run normally.
	var killOnce atomic.Bool
	killOnce.Store(true)
	go bsp.ServeNode(ctx, coord.Addr().String(), func(nodeJob *bsp.NodeJob) ([]byte, error) {
		plan, err := euler.DecodePlanSlice(nodeJob.Plan)
		if err != nil {
			return nil, err
		}
		wp := euler.NewWorkerProgram(plan)
		killer := bsp.ProgramFunc(func(c *bsp.Context) error {
			if c.Superstep() == 1 && killOnce.CompareAndSwap(true, false) {
				nodeJob.Transport.Close()
			}
			return wp.Compute(c)
		})
		e := bsp.New(plan.NumWorkers, bsp.WithWorkerRange(plan.Lo, plan.Hi), bsp.WithTransport(nodeJob.Transport))
		m, err := e.Run(struct {
			bsp.Program
			bsp.BarrierHooks
		}{killer, wp})
		if err != nil {
			return nil, err
		}
		return wp.Result(m), nil
	}, bsp.NodeOptions{Name: "doomed", Capacity: 4})

	g := gen.Torus(16, 16)
	a := partition.LDG(g, 8, 1)
	done := make(chan error, 1)
	go func() {
		_, _, err := coord.Run(context.Background(), g, a, euler.Config{})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("job with a killed worker reported success")
		}
		t.Logf("job failed as expected: %v", err)
	case <-time.After(20 * time.Second):
		t.Fatal("coordinator hung after worker death")
	}

	st, ok := coord.ClusterStatus().(Status)
	if !ok || st.JobsFailed == 0 {
		t.Fatalf("status does not count the failure: %+v", st)
	}

	// The abort must not leave ghost registrations behind: both nodes
	// re-register and the next job over the healed cluster succeeds.
	res, _, err := coord.Run(context.Background(), g, a, euler.Config{})
	if err != nil {
		t.Fatalf("job after cluster heal: %v", err)
	}
	steps := collectSteps(t, res)
	if err := verify.Circuit(g, steps); err != nil {
		t.Fatal(err)
	}
}

// TestClusterNoNodes: a coordinator with no joined workers fails a job
// with a clear error once the wait deadline passes.
func TestClusterNoNodes(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", Options{MinNodes: 1, WaitNodes: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	g := gen.Torus(4, 4)
	a := partition.LDG(g, 2, 1)
	_, _, err = coord.Run(context.Background(), g, a, euler.Config{})
	if err == nil || !strings.Contains(err.Error(), "waiting for") {
		t.Fatalf("err = %v, want waiting-for-nodes error", err)
	}
}

// TestClusterRetriesAfterNodeLoss arms a faultpoint that cuts one node's
// conn mid-superstep and asserts the coordinator's retry policy absorbs
// the loss: the job succeeds after a re-plan, the circuit is
// byte-identical to the local run, and the retry counters advance.
func TestClusterRetriesAfterNodeLoss(t *testing.T) {
	faultpoint.Reset()
	if err := faultpoint.Arm("bsp.node.wire=drop,step=1,times=1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultpoint.Reset)

	coord, err := NewCoordinator("127.0.0.1:0", Options{
		MinNodes: 2, WaitNodes: 10 * time.Second, StepTimeout: 20 * time.Second,
		JobRetries: 3, RetryBackoff: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go RunWorker(ctx, coord.Addr().String(), WorkerOptions{Name: fmt.Sprintf("r%d", i), Capacity: 4})
	}

	g := gen.Torus(16, 16)
	a := partition.LDG(g, 8, 1)
	local, err := euler.Run(g, a, euler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := collectSteps(t, local)

	res, info, err := coord.Run(context.Background(), g, a, euler.Config{})
	if err != nil {
		t.Fatalf("job did not survive the node loss: %v", err)
	}
	if faultpoint.Hits(bsp.FaultNodeWire) == 0 {
		t.Fatal("fault never fired; the run proves nothing")
	}
	if info.Attempts < 2 || info.Replans < 1 || info.Degraded {
		t.Fatalf("info = %+v, want >=2 attempts with a re-plan, not degraded", info)
	}
	got := collectSteps(t, res)
	if len(got) != len(want) {
		t.Fatalf("retried circuit has %d steps, local %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("step %d differs after retry: cluster %+v, local %+v", i, got[i], want[i])
		}
	}
	if err := verify.Circuit(g, got); err != nil {
		t.Fatal(err)
	}

	st, ok := coord.ClusterStatus().(Status)
	if !ok || st.JobsRetried < 1 || st.Replans < 1 {
		t.Fatalf("status does not record the retry: %+v", st)
	}
	if st.JobsFailed != 0 {
		t.Fatalf("retried job counted as failed: %+v", st)
	}
	if st.LastError == "" || st.LastErrorAt == nil {
		t.Fatalf("status does not record the attempt failure: %+v", st)
	}
}

// TestClusterDegradedFallback: quorum is unreachable (no workers join)
// but DegradedLocal lets the job complete in-process, flagged degraded,
// with the same circuit a healthy run would produce.
func TestClusterDegradedFallback(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", Options{
		MinNodes: 2, WaitNodes: 300 * time.Millisecond, DegradedLocal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	g := gen.Torus(8, 8)
	a := partition.LDG(g, 4, 1)
	local, err := euler.Run(g, a, euler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := collectSteps(t, local)

	res, info, err := coord.Run(context.Background(), g, a, euler.Config{})
	if err != nil {
		t.Fatalf("degraded fallback failed: %v", err)
	}
	if !info.Degraded {
		t.Fatalf("info = %+v, want degraded", info)
	}
	got := collectSteps(t, res)
	if len(got) != len(want) {
		t.Fatalf("degraded circuit has %d steps, local %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("step %d differs in degraded run", i)
		}
	}

	st := coord.ClusterStatus().(Status)
	if st.DegradedRuns != 1 || st.JobsRun != 1 || st.JobsFailed != 0 {
		t.Fatalf("status = %+v, want one degraded completed job", st)
	}
}

package cluster

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"time"
)

// Spawner launches eulerd OS processes programmatically: the load
// harness uses it to stand up standalone servers, coordinator+worker
// topologies, and to kill workers mid-run for chaos scenarios.  It only
// builds argv and manages process lifecycle; the binary is cmd/eulerd.
type Spawner struct {
	// Binary is the eulerd executable to launch (required).
	Binary string
	// WorkDir receives per-process scratch and log files (required).
	WorkDir string
	// Env is appended to the inherited environment of every process this
	// spawner starts (e.g. "GOMEMLIMIT=24MiB" for memory-constrained
	// scenarios); empty means plain os.Environ().
	Env []string
	// Logf receives lifecycle diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (s *Spawner) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Proc is one spawned eulerd process.
type Proc struct {
	// Name labels the process in logs ("coordinator", "worker-1", ...).
	Name string
	// LogPath is the file capturing the process's stdout+stderr.
	LogPath string

	cmd  *exec.Cmd
	done chan struct{} // closed when Wait returns
	err  error
}

// Pid returns the OS process ID.
func (p *Proc) Pid() int { return p.cmd.Process.Pid }

// Err returns the process's exit error once it has exited (nil while it
// is still running or when it exited cleanly).
func (p *Proc) Err() error {
	select {
	case <-p.done:
		return p.err
	default:
		return nil
	}
}

// Alive reports whether the process has not yet exited.
func (p *Proc) Alive() bool {
	select {
	case <-p.done:
		return false
	default:
		return true
	}
}

// Kill terminates the process immediately (SIGKILL) and reaps it; the
// chaos scenarios use it so a worker dies without any graceful
// handshake.  Killing an exited process is a no-op.
func (p *Proc) Kill() {
	if !p.Alive() {
		return
	}
	p.cmd.Process.Kill()
	<-p.done
}

// Stop asks the process to shut down gracefully (SIGTERM) and waits up
// to grace before killing it.
func (p *Proc) Stop(grace time.Duration) {
	if !p.Alive() {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
	case <-time.After(grace):
		p.cmd.Process.Kill()
		<-p.done
	}
}

// start launches the binary with args, teeing output to a log file.
func (s *Spawner) start(name string, args ...string) (*Proc, error) {
	logPath := filepath.Join(s.WorkDir, name+".log")
	logFile, err := os.Create(logPath)
	if err != nil {
		return nil, fmt.Errorf("cluster: creating %s: %w", logPath, err)
	}
	cmd := exec.Command(s.Binary, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if len(s.Env) > 0 {
		cmd.Env = append(os.Environ(), s.Env...)
	}
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return nil, fmt.Errorf("cluster: starting %s: %w", name, err)
	}
	p := &Proc{Name: name, LogPath: logPath, cmd: cmd, done: make(chan struct{})}
	go func() {
		p.err = cmd.Wait()
		logFile.Close()
		close(p.done)
	}()
	s.logf("spawned %s (pid %d): %s %v", name, p.Pid(), s.Binary, args)
	return p, nil
}

// StartStandalone launches a standalone eulerd listening on httpAddr.
// extra is appended verbatim (e.g. "-workers", "2").
func (s *Spawner) StartStandalone(name, httpAddr string, extra ...string) (*Proc, error) {
	dir := filepath.Join(s.WorkDir, name+"-data")
	args := append([]string{"-role", "standalone", "-addr", httpAddr, "-data", dir}, extra...)
	return s.start(name, args...)
}

// StartCoordinator launches a coordinator serving HTTP on httpAddr and
// worker joins on clusterAddr.
func (s *Spawner) StartCoordinator(name, httpAddr, clusterAddr string, minNodes int, extra ...string) (*Proc, error) {
	dir := filepath.Join(s.WorkDir, name+"-data")
	args := append([]string{
		"-role", "coordinator", "-addr", httpAddr, "-cluster", clusterAddr,
		"-min-nodes", strconv.Itoa(minNodes), "-data", dir,
	}, extra...)
	return s.start(name, args...)
}

// StartWorker launches a worker that joins the coordinator at
// clusterAddr with the given engine capacity.
func (s *Spawner) StartWorker(name, clusterAddr string, capacity int, extra ...string) (*Proc, error) {
	args := append([]string{
		"-role", "worker", "-join", clusterAddr,
		"-capacity", strconv.Itoa(capacity), "-node-name", name,
	}, extra...)
	return s.start(name, args...)
}

// FreeAddr reserves an OS-assigned loopback TCP port and returns it as
// host:port.  The listener is closed before returning, so the port is
// only probabilistically free — fine for a test harness, matching what
// scripts/cluster_smoke.sh did with fixed ports.
func FreeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

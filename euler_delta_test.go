package euler

import (
	"fmt"
	"math/rand"
	"testing"
)

// collectSteps runs fn and returns the emitted steps.
func collectSteps(t *testing.T, run func(emit func(Step) error) error) []Step {
	t.Helper()
	var steps []Step
	if err := run(func(s Step) error {
		steps = append(steps, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return steps
}

func sameSteps(a, b []Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// doubleEdge returns g plus two extra parallel copies of edge id e, which
// preserves degree parity and connectivity.
func doubleEdge(g *Graph, e int64) *Graph {
	b := NewBuilder(g.NumVertices(), int(g.NumEdges())+2)
	for id := int64(0); id < g.NumEdges(); id++ {
		ed := g.Edge(id)
		b.AddEdge(ed.U, ed.V)
	}
	ed := g.Edge(e)
	b.AddEdge(ed.U, ed.V)
	b.AddEdge(ed.U, ed.V)
	return b.Build()
}

// TestDeltaReusesCleanPartitions checks the headline property on a
// partition-local input: a doubled intra-clique edge dirties one leaf, the
// delta run replays the rest, and the circuit matches a from-scratch solve
// byte for byte.
func TestDeltaReusesCleanPartitions(t *testing.T) {
	base := NewRingOfCliques(8, 5)
	opts := []Option{WithPartitions(4), WithSeed(7)}

	var retained []byte
	baseSteps := collectSteps(t, func(emit func(Step) error) error {
		_, r, err := FindCircuitStreamRetain(base, emit, opts...)
		retained = r
		return err
	})
	if len(retained) == 0 {
		t.Fatal("no retained record")
	}
	if err := Verify(base, baseSteps); err != nil {
		t.Fatal(err)
	}

	patched := doubleEdge(base, 3)
	fullSteps := collectSteps(t, func(emit func(Step) error) error {
		_, err := FindCircuitStream(patched, emit, opts...)
		return err
	})

	var report *Report
	var chained []byte
	deltaSteps := collectSteps(t, func(emit func(Step) error) error {
		r, next, err := FindCircuitStreamDelta(patched, emit, retained, opts...)
		report, chained = r, next
		return err
	})
	if !sameSteps(fullSteps, deltaSteps) {
		t.Fatalf("delta circuit differs from full solve (%d vs %d steps)", len(deltaSteps), len(fullSteps))
	}
	if report.ReusedParts == 0 {
		t.Fatal("delta run reused no partitions on a partition-local edit")
	}
	t.Logf("reused %d merge-tree nodes", report.ReusedParts)

	// Chain: a further edit against the delta run's own retained record.
	patched2 := doubleEdge(patched, patched.NumEdges()-4)
	full2 := collectSteps(t, func(emit func(Step) error) error {
		_, err := FindCircuitStream(patched2, emit, opts...)
		return err
	})
	delta2 := collectSteps(t, func(emit func(Step) error) error {
		_, _, err := FindCircuitStreamDelta(patched2, emit, chained, opts...)
		return err
	})
	if !sameSteps(full2, delta2) {
		t.Fatal("chained delta circuit differs from full solve")
	}
}

// TestDeltaByteIdenticalProperty is the property-style sweep: random
// Eulerian multigraphs, random small diffs (doubled existing edges — the
// only universally parity- and connectivity-preserving single-pair edit),
// across partition counts and modes.  The delta solve must match the full
// solve of the patched graph byte for byte even when the edit perturbs the
// partitioning and nothing can be reused.
func TestDeltaByteIdenticalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	modes := []Mode{ModeCurrent, ModeDedup, ModeProposed}
	for trial := 0; trial < 6; trial++ {
		g := NewRandomEulerian(40+int64(rng.Intn(80)), 2+rng.Intn(3), 30, rng)
		parts := int32(2 + rng.Intn(3))
		mode := modes[trial%len(modes)]
		opts := []Option{WithPartitions(parts), WithMode(mode), WithSeed(int64(trial))}
		t.Run(fmt.Sprintf("trial=%d/parts=%d/mode=%v", trial, parts, mode), func(t *testing.T) {
			var retained []byte
			baseSteps := collectSteps(t, func(emit func(Step) error) error {
				_, r, err := FindCircuitStreamRetain(g, emit, opts...)
				retained = r
				return err
			})
			if err := Verify(g, baseSteps); err != nil {
				t.Fatal(err)
			}

			patched := g
			for i, n := 0, 1+rng.Intn(3); i < n; i++ {
				patched = doubleEdge(patched, rng.Int63n(patched.NumEdges()))
			}
			full := collectSteps(t, func(emit func(Step) error) error {
				_, err := FindCircuitStream(patched, emit, opts...)
				return err
			})
			var report *Report
			delta := collectSteps(t, func(emit func(Step) error) error {
				r, _, err := FindCircuitStreamDelta(patched, emit, retained, opts...)
				report = r
				return err
			})
			if !sameSteps(full, delta) {
				t.Fatalf("delta differs from full solve (%d vs %d steps, reused=%d)",
					len(delta), len(full), report.ReusedParts)
			}
			if err := Verify(patched, delta); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeltaRetainedRecordRoundTrip guards the retention codec itself.
func TestDeltaRetainedRecordRoundTrip(t *testing.T) {
	g := NewTorus(6, 6)
	var retained []byte
	collectSteps(t, func(emit func(Step) error) error {
		_, r, err := FindCircuitStreamRetain(g, emit, WithPartitions(3))
		retained = r
		return err
	})
	// An identical re-solve against the record must reuse every node.
	var report *Report
	steps := collectSteps(t, func(emit func(Step) error) error {
		r, _, err := FindCircuitStreamDelta(g, emit, retained, WithPartitions(3))
		report = r
		return err
	})
	full := collectSteps(t, func(emit func(Step) error) error {
		_, err := FindCircuitStream(g, emit, WithPartitions(3))
		return err
	})
	if !sameSteps(full, steps) {
		t.Fatal("identity delta differs from full solve")
	}
	if report.ReusedParts == 0 {
		t.Fatalf("identity delta reused nothing")
	}
	t.Logf("identity delta reused %d nodes", report.ReusedParts)

	// Corrupt retained bytes must error, not mis-replay.
	if len(retained) > 0 {
		bad := append([]byte(nil), retained...)
		bad[0] ^= 0xFF
		if _, _, err := FindCircuitStreamDelta(g, func(Step) error { return nil }, bad, WithPartitions(3)); err == nil {
			t.Fatal("corrupt retained record accepted")
		}
	}
}

package euler_test

import (
	"fmt"

	euler "repro"
)

// ExampleFindCircuit finds and verifies an Euler circuit of a toroidal
// grid with the partition-centric distributed algorithm.
func ExampleFindCircuit() {
	g := euler.NewTorus(8, 8) // 4-regular: Eulerian by construction
	c, err := euler.FindCircuit(g, euler.WithPartitions(4))
	if err != nil {
		panic(err)
	}
	fmt.Println("steps:", len(c.Steps))
	fmt.Println("supersteps:", c.Report.BSP.Supersteps)
	fmt.Println("verified:", euler.Verify(g, c.Steps) == nil)
	// Output:
	// steps: 128
	// supersteps: 3
	// verified: true
}

// ExampleCoveringTour covers a non-Eulerian street grid, the paper's
// stated future-work generalisation.
func ExampleCoveringTour() {
	b := euler.NewBuilder(4, 4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	b.AddEdge(0, 2) // diagonal makes 0 and 2 odd
	g := b.Build()
	tour, err := euler.CoveringTour(g, euler.WithPartitions(2))
	if err != nil {
		panic(err)
	}
	fmt.Println("edges:", g.NumEdges())
	fmt.Println("tour length:", len(tour.Steps))
	fmt.Println("revisits:", tour.Revisits)
	// Output:
	// edges: 5
	// tour length: 6
	// revisits: 1
}

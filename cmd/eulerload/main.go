// Command eulerload is the scenario-driven load/soak harness for eulerd.
// It drives real eulerd processes (standalone servers and coordinator+
// worker clusters, including kill-one-worker chaos) through declarative
// traffic scenarios, verifies every returned circuit, and writes a
// machine-readable BenchReport that the CI perf gate diffs against the
// checked-in BENCH_4.json baseline.
//
// Usage:
//
//	eulerload list [-profile ci]
//	eulerload run -profile ci -out report.json [-eulerd path] [-mult 1] [-scenario name]
//	eulerload compare -baseline BENCH_4.json -current report.json [-slack 1.5]
//
// run builds cmd/eulerd automatically when -eulerd is not given (the
// working directory must then be the module root).  compare exits
// non-zero when any gated metric falls outside its baseline tolerance
// band; see CONTRIBUTING.md for refreshing the baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/bench"
	"repro/internal/load"
)

// newFlagSet returns a subcommand flag set that exits on parse errors.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet("eulerload "+name, flag.ExitOnError)
}

func main() {
	log.SetFlags(log.Ltime)
	log.SetPrefix("eulerload: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "eulerload: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  eulerload list [-profile ci]
  eulerload run -profile ci [-out report.json] [-eulerd path] [-mult 1] [-scenario name] [-workdir dir]
  eulerload compare -baseline BENCH_4.json -current report.json [-slack 1.5]
`)
}

func cmdList(args []string) {
	fs := newFlagSet("list")
	profile := fs.String("profile", "", "only scenarios in this profile")
	fs.Parse(args)
	scenarios := load.Scenarios()
	if *profile != "" {
		scenarios = load.ByProfile(*profile)
	}
	for _, s := range scenarios {
		tags := ""
		if s.Topology == load.TopoCluster {
			tags = " [cluster]"
		}
		if s.ChaosKillWorker {
			tags += " [chaos]"
		}
		if s.ExpectDedup {
			tags += " [dedup]"
		}
		if s.ExpectThrottle {
			tags += " [fairness]"
		}
		fmt.Printf("%-26s %d jobs%s  %s  (profiles: %v)\n", s.Name, s.Jobs, tags, s.Description, s.Profiles)
	}
}

func cmdRun(args []string) {
	fs := newFlagSet("run")
	var (
		profile  = fs.String("profile", "ci", "scenario profile to run")
		scenario = fs.String("scenario", "", "run only this scenario (overrides -profile)")
		out      = fs.String("out", "", "write the BenchReport JSON here")
		binary   = fs.String("eulerd", "", "eulerd binary to drive (default: go build ./cmd/eulerd)")
		mult     = fs.Float64("mult", 1, "job-count multiplier (soak runs pass > 1)")
		workdir  = fs.String("workdir", "", "scratch directory for process state and logs")
	)
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var scenarios []load.Scenario
	if *scenario != "" {
		sc, err := load.ByName(*scenario)
		if err != nil {
			log.Fatal(err)
		}
		scenarios = []load.Scenario{sc}
	} else {
		scenarios = load.ByProfile(*profile)
		if len(scenarios) == 0 {
			log.Fatalf("profile %q selects no scenarios", *profile)
		}
	}

	workDir := *workdir
	ownWorkDir := false
	if workDir == "" {
		d, err := os.MkdirTemp("", "eulerload-")
		if err != nil {
			log.Fatal(err)
		}
		workDir, ownWorkDir = d, true
	}
	bin := *binary
	if bin == "" {
		b, err := buildEulerd(ctx, workDir)
		if err != nil {
			log.Fatalf("building eulerd: %v (pass -eulerd to use a prebuilt binary)", err)
		}
		bin = b
	}

	report, runErr := load.RunScenarios(ctx, scenarios, load.HarnessOptions{
		Binary:         bin,
		WorkDir:        workDir,
		Profile:        *profile,
		JobsMultiplier: *mult,
		Logf:           log.Printf,
	})
	if report != nil && *out != "" {
		if err := bench.WriteReportFile(*out, report); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s (%d scenarios)", *out, len(report.Scenarios))
	}
	if runErr != nil {
		// Keep the binary, data dirs, and process logs for post-mortems.
		log.Printf("process state kept in %s", workDir)
		log.Fatalf("run failed:\n%v", runErr)
	}
	if ownWorkDir {
		os.RemoveAll(workDir)
	}
	log.Printf("all %d scenarios passed", len(report.Scenarios))
}

func cmdCompare(args []string) {
	fs := newFlagSet("compare")
	var (
		baselinePath = fs.String("baseline", "BENCH_4.json", "checked-in baseline report")
		currentPath  = fs.String("current", "", "freshly produced report (required)")
		slack        = fs.Float64("slack", 1, "multiplier widening every tolerance band")
	)
	fs.Parse(args)
	if *currentPath == "" {
		log.Fatal("compare requires -current")
	}
	baseline, err := bench.ReadReportFile(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	current, err := bench.ReadReportFile(*currentPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %s (%s/%s, %s)\ncurrent:  %s (%s/%s, %s)\nslack:    %.2fx\n\n",
		*baselinePath, baseline.Machine.GOOS, baseline.Machine.GOARCH, baseline.Machine.GoVersion,
		*currentPath, current.Machine.GOOS, current.Machine.GOARCH, current.Machine.GoVersion,
		*slack)
	cmp := bench.Compare(baseline, current, *slack)
	fmt.Print(cmp.String())
	if cmp.Regressions() > 0 {
		os.Exit(1)
	}
}

// buildEulerd compiles cmd/eulerd into workDir.
func buildEulerd(ctx context.Context, workDir string) (string, error) {
	bin := filepath.Join(workDir, "eulerd")
	cmd := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/eulerd")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	log.Printf("building eulerd: %v", cmd.Args)
	if err := cmd.Run(); err != nil {
		return "", err
	}
	return bin, nil
}

package main

import (
	"path/filepath"
	"testing"

	euler "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestFileToCircuitEndToEnd exercises the eulerrun pipeline: a stored
// EULGRPH1 graph is read back and run through the distributed algorithm
// with spilling, and the circuit verifies.
func TestFileToCircuitEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.bin")
	if err := graph.WriteFile(path, gen.Torus(10, 7)); err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := euler.FindCircuit(g,
		euler.WithPartitions(4),
		euler.WithMode(euler.ModeProposed),
		euler.WithSpillDir(dir),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := euler.Verify(g, c.Steps); err != nil {
		t.Fatalf("circuit: %v", err)
	}
	if int64(len(c.Steps)) != g.NumEdges() {
		t.Fatalf("circuit has %d steps, want %d", len(c.Steps), g.NumEdges())
	}
	if c.Report == nil || c.Report.BSP.Supersteps == 0 {
		t.Fatal("report missing BSP metrics")
	}
}

func TestFirstVertexWithEdges(t *testing.T) {
	b := graph.NewBuilder(5, 3)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	g := b.Build()
	if v := firstVertexWithEdges(g); v != 2 {
		t.Fatalf("firstVertexWithEdges = %d, want 2", v)
	}
}

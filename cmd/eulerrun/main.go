// Command eulerrun finds the Euler circuit of a stored graph with the
// partition-centric distributed algorithm, verifies it, and prints the run
// report: per-level timings, memory state, and BSP metrics.
//
// Usage:
//
//	eulerrun -graph graph.bin -parts 8 -mode proposed -circuit out.txt
//	eulerrun -graph graph.bin -seq          # sequential Hierholzer baseline
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bsp"
	"repro/internal/euler"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/seq"
	"repro/internal/spill"
	"repro/internal/stats"
	"repro/internal/verify"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "input graph file (required)")
		parts      = flag.Int("parts", 4, "partition count")
		modeName   = flag.String("mode", "current", "remote-edge mode: current, dedup, proposed")
		seqRun     = flag.Bool("seq", false, "run the sequential Hierholzer baseline instead")
		circuitOut = flag.String("circuit", "", "write the circuit (one 'from to edge' line per step)")
		spillDir   = flag.String("spill", "", "spill path bodies to this directory")
		saveCkpt   = flag.String("save-checkpoint", "", "after Phases 1-2, save the registry checkpoint here (requires -spill)")
		fromCkpt   = flag.String("from-checkpoint", "", "skip Phases 1-2: run Phase 3 from this checkpoint (requires -spill)")
		seed       = flag.Int64("seed", 1, "partitioner seed")
		model      = flag.Bool("model", true, "include the commodity-cluster cost model")
		noVerify   = flag.Bool("no-verify", false, "skip circuit verification")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "eulerrun: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := graph.ReadFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d undirected edges\n", g.NumVertices(), g.NumEdges())

	if *fromCkpt != "" {
		if *spillDir == "" {
			fatal(fmt.Errorf("-from-checkpoint requires -spill"))
		}
		runPhase3Only(g, *fromCkpt, *spillDir, *circuitOut, *noVerify)
		return
	}

	if *seqRun {
		start := time.Now()
		steps, err := seq.Hierholzer(g, firstVertexWithEdges(g))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sequential hierholzer: %d steps in %v\n", len(steps), time.Since(start).Round(time.Millisecond))
		finish(g, steps, *circuitOut, *noVerify)
		return
	}

	var mode euler.Mode
	switch *modeName {
	case "current":
		mode = euler.ModeCurrent
	case "dedup":
		mode = euler.ModeDedup
	case "proposed":
		mode = euler.ModeProposed
	default:
		fmt.Fprintf(os.Stderr, "eulerrun: unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	cfg := euler.Config{Mode: mode}
	if *model {
		cfg.Cost = bsp.CommodityCluster()
	}
	if *spillDir != "" {
		ds, err := spill.NewDiskStore(*spillDir + "/eulerrun-spill.log")
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		cfg.Store = ds
	}

	a := partition.LDG(g, int32(*parts), *seed)
	fmt.Printf("partitions: %s\n", partition.ComputeMetrics(g, a))

	res, err := euler.Run(g, a, cfg)
	if err != nil {
		fatal(err)
	}
	if *saveCkpt != "" {
		if *spillDir == "" {
			fatal(fmt.Errorf("-save-checkpoint requires -spill (bodies must be on disk)"))
		}
		f, err := os.Create(*saveCkpt)
		if err != nil {
			fatal(err)
		}
		if err := res.Registry.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint saved to %s (resume with -from-checkpoint)\n", *saveCkpt)
	}
	steps, err := res.Registry.CollectCircuit()
	if err != nil {
		fatal(err)
	}

	r := res.Report
	fmt.Printf("\nrun: mode=%v supersteps=%d shuffle=%.1fMB wall=%v user=%v modeled=%v\n",
		r.Mode, r.BSP.Supersteps, float64(r.BSP.Bytes)/1e6,
		r.Wall.Round(time.Millisecond),
		r.UserComputeTotal().Round(time.Millisecond),
		r.BSP.ModeledTotal.Round(time.Millisecond))
	tb := stats.NewTable("Level", "Active", "Live", "Cum.Longs", "Avg.Longs", "Parked")
	for _, l := range r.Levels {
		tb.AddRow(l.Level, l.Active, l.Live, l.CumulativeLongs, l.AvgLongs, l.ParkedLongs)
	}
	fmt.Println(tb.String())

	finish(g, steps, *circuitOut, *noVerify)
}

func finish(g *graph.Graph, steps []graph.Step, out string, noVerify bool) {
	if !noVerify {
		if err := verify.Circuit(g, steps); err != nil {
			fatal(err)
		}
		fmt.Printf("circuit verified: %d edges, closed walk\n", len(steps))
	}
	if out == "" {
		return
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	for _, s := range steps {
		fmt.Fprintf(w, "%d %d %d\n", s.From, s.To, s.Edge)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote circuit to %s\n", out)
}

// runPhase3Only reconstructs the circuit from a saved checkpoint and the
// reopened spill store — the paper's "book-keeping persisted to disk"
// workflow with Phase 3 as a separate process.
func runPhase3Only(g *graph.Graph, ckptPath, spillDir, circuitOut string, noVerify bool) {
	ds, err := spill.OpenDiskStore(spillDir + "/eulerrun-spill.log")
	if err != nil {
		fatal(err)
	}
	defer ds.Close()
	f, err := os.Open(ckptPath)
	if err != nil {
		fatal(err)
	}
	reg, err := euler.LoadRegistry(f, ds)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("checkpoint: %d paths/cycles, master %d\n", reg.NumPaths(), reg.Master())
	steps, err := reg.CollectCircuit()
	if err != nil {
		fatal(err)
	}
	finish(g, steps, circuitOut, noVerify)
}

func firstVertexWithEdges(g *graph.Graph) graph.VertexID {
	for v := int64(0); v < g.NumVertices(); v++ {
		if g.Degree(v) > 0 {
			return v
		}
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "eulerrun: %v\n", err)
	os.Exit(1)
}

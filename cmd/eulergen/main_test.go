package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/seq"
	"repro/internal/verify"
)

// TestGenerateWriteReadVerify locks the EULGRPH1 round-trip the service
// upload endpoint depends on: each graph family is generated, written
// through graph.WriteFile, read back, and a circuit of the reloaded
// graph is found and verified.
func TestGenerateWriteReadVerify(t *testing.T) {
	dir := t.TempDir()
	families := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"rmat", func() *graph.Graph {
			g, _ := gen.EulerianRMAT(gen.RMATParams{
				Vertices: 2000, AvgDegree: 4,
				A: 0.57, B: 0.19, C: 0.19, Seed: 42,
			})
			return g
		}},
		{"torus", func() *graph.Graph { return gen.Torus(12, 9) }},
		{"cliques", func() *graph.Graph { return gen.RingOfCliques(6, 7) }},
	}
	for _, f := range families {
		t.Run(f.name, func(t *testing.T) {
			g := f.build()
			if err := verify.EulerianInput(g); err != nil {
				t.Fatalf("generated graph invalid: %v", err)
			}
			path := filepath.Join(dir, f.name+".bin")
			if err := graph.WriteFile(path, g); err != nil {
				t.Fatalf("write: %v", err)
			}
			back, err := graph.ReadFile(path)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
				t.Fatalf("round-trip: got %d/%d vertices/edges, want %d/%d",
					back.NumVertices(), back.NumEdges(), g.NumVertices(), g.NumEdges())
			}
			for i, e := range g.Edges() {
				if back.Edge(int64(i)) != e {
					t.Fatalf("edge %d changed in round-trip: %+v vs %+v", i, back.Edge(int64(i)), e)
				}
			}
			steps, err := seq.Hierholzer(back, back.Edge(0).U)
			if err != nil {
				t.Fatalf("hierholzer: %v", err)
			}
			if err := verify.Circuit(back, steps); err != nil {
				t.Fatalf("circuit of reloaded graph: %v", err)
			}
		})
	}
}

// TestReadRejectsJunk pins the error path the upload endpoint relies on.
func TestReadRejectsJunk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.bin")
	if err := os.WriteFile(path, []byte("definitely not a graph"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := graph.ReadFile(path); err == nil {
		t.Fatal("reading junk should fail")
	}
}

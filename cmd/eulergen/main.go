// Command eulergen builds Eulerian graph datasets the way the paper does
// (Sec. 4.2): an RMAT power-law graph, reduced to its largest connected
// component and Eulerised so every vertex has even degree, written in the
// repo's binary graph format for eulerrun/eulerbench to consume.
//
// Usage:
//
//	eulergen -out graph.bin -vertices 200000 -degree 5 -seed 42
//	eulergen -out torus.bin -family torus -width 500 -height 400
//	eulergen -out cliques.bin -family cliques -k 64 -c 9
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func main() {
	var (
		out      = flag.String("out", "", "output file (required)")
		family   = flag.String("family", "rmat", "graph family: rmat, torus, cliques")
		vertices = flag.Int64("vertices", 100_000, "rmat: vertex count")
		degree   = flag.Int("degree", 5, "rmat: average undirected degree")
		seed     = flag.Int64("seed", 42, "rmat: generator seed")
		width    = flag.Int64("width", 100, "torus: grid width")
		height   = flag.Int64("height", 100, "torus: grid height")
		k        = flag.Int64("k", 16, "cliques: number of cliques")
		c        = flag.Int64("c", 9, "cliques: clique size (odd)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "eulergen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var g *graph.Graph
	switch *family {
	case "rmat":
		eg, stats := gen.EulerianRMAT(gen.RMATParams{
			Vertices: *vertices, AvgDegree: *degree,
			A: 0.57, B: 0.19, C: 0.19, Seed: *seed,
		})
		g = eg
		fmt.Printf("rmat: %d vertices, %d undirected edges, %.1f%% added by eulerizer\n",
			g.NumVertices(), g.NumEdges(), stats.ExtraPercent)
	case "torus":
		g = gen.Torus(*width, *height)
		fmt.Printf("torus: %dx%d, %d edges\n", *width, *height, g.NumEdges())
	case "cliques":
		g = gen.RingOfCliques(*k, *c)
		fmt.Printf("ring of cliques: %d x K%d, %d edges\n", *k, *c, g.NumEdges())
	default:
		fmt.Fprintf(os.Stderr, "eulergen: unknown family %q\n", *family)
		os.Exit(2)
	}

	if err := verify.EulerianInput(g); err != nil {
		fmt.Fprintf(os.Stderr, "eulergen: generated graph invalid: %v\n", err)
		os.Exit(1)
	}
	if err := graph.WriteFile(*out, g); err != nil {
		fmt.Fprintf(os.Stderr, "eulergen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// Command eulergen builds Eulerian graph datasets the way the paper does
// (Sec. 4.2): an RMAT power-law graph, reduced to its largest connected
// component and Eulerised so every vertex has even degree, written in the
// repo's binary graph format for eulerrun/eulerbench to consume.
//
// Usage:
//
//	eulergen -out graph.bin -vertices 200000 -degree 5 -seed 42
//	eulergen -out torus.bin -family torus -width 500 -height 400
//	eulergen -out cliques.bin -family cliques -k 64 -c 9
//	eulergen -o huge.bin -stream -family torus -width 20000 -height 20000
//
// With -stream the deterministic families (torus, cliques) are emitted
// straight to disk through a buffered edge stream — the graph is never
// materialised in memory, so outputs can be far larger than RAM.  The
// bytes written are identical to the in-memory path.  RMAT cannot
// stream: eulerisation needs the whole graph.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func main() {
	var (
		out      = flag.String("out", "", "output file (required)")
		outAlias = flag.String("o", "", "alias for -out")
		stream   = flag.Bool("stream", false, "emit edges straight to disk without building the graph in memory (torus and cliques only)")
		family   = flag.String("family", "rmat", "graph family: rmat, torus, cliques")
		vertices = flag.Int64("vertices", 100_000, "rmat: vertex count")
		degree   = flag.Int("degree", 5, "rmat: average undirected degree")
		seed     = flag.Int64("seed", 42, "rmat: generator seed")
		width    = flag.Int64("width", 100, "torus: grid width")
		height   = flag.Int64("height", 100, "torus: grid height")
		k        = flag.Int64("k", 16, "cliques: number of cliques")
		c        = flag.Int64("c", 9, "cliques: clique size (odd)")
	)
	flag.Parse()
	if *out == "" {
		*out = *outAlias
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "eulergen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	if *stream {
		if err := streamFamily(*out, *family, *width, *height, *k, *c); err != nil {
			fmt.Fprintf(os.Stderr, "eulergen: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}

	var g *graph.Graph
	switch *family {
	case "rmat":
		eg, stats := gen.EulerianRMAT(gen.RMATParams{
			Vertices: *vertices, AvgDegree: *degree,
			A: 0.57, B: 0.19, C: 0.19, Seed: *seed,
		})
		g = eg
		fmt.Printf("rmat: %d vertices, %d undirected edges, %.1f%% added by eulerizer\n",
			g.NumVertices(), g.NumEdges(), stats.ExtraPercent)
	case "torus":
		g = gen.Torus(*width, *height)
		fmt.Printf("torus: %dx%d, %d edges\n", *width, *height, g.NumEdges())
	case "cliques":
		g = gen.RingOfCliques(*k, *c)
		fmt.Printf("ring of cliques: %d x K%d, %d edges\n", *k, *c, g.NumEdges())
	default:
		fmt.Fprintf(os.Stderr, "eulergen: unknown family %q\n", *family)
		os.Exit(2)
	}

	if err := verify.EulerianInput(g); err != nil {
		fmt.Fprintf(os.Stderr, "eulergen: generated graph invalid: %v\n", err)
		os.Exit(1)
	}
	if err := graph.WriteFile(*out, g); err != nil {
		fmt.Fprintf(os.Stderr, "eulergen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// streamFamily writes a deterministic family straight to disk through a
// StreamWriter; edge order (and therefore the file bytes) matches the
// in-memory generators exactly.  The families are Eulerian by
// construction, so no whole-graph verification pass is needed — which is
// the point: nothing here is O(graph) in memory.
func streamFamily(out, family string, width, height, k, c int64) error {
	var vertices, edges uint64
	var emit func(func(u, v graph.VertexID) error) error
	switch family {
	case "torus":
		if width < 3 || height < 3 {
			return fmt.Errorf("torus requires -width and -height >= 3")
		}
		vertices, edges = uint64(width*height), uint64(2*width*height)
		emit = func(fn func(u, v graph.VertexID) error) error { return gen.StreamTorus(width, height, fn) }
		fmt.Printf("torus (streamed): %dx%d, %d edges\n", width, height, edges)
	case "cliques":
		if k < 2 || c < 3 || c%2 == 0 {
			return fmt.Errorf("cliques requires -k >= 2 and odd -c >= 3")
		}
		vertices, edges = uint64(k*(c-1)), uint64(k*c*(c-1)/2)
		emit = func(fn func(u, v graph.VertexID) error) error { return gen.StreamRingOfCliques(k, c, fn) }
		fmt.Printf("ring of cliques (streamed): %d x K%d, %d edges\n", k, c, edges)
	case "rmat":
		return fmt.Errorf("-stream does not support rmat: eulerisation needs the whole graph in memory")
	default:
		return fmt.Errorf("unknown family %q", family)
	}
	sw, err := graph.NewStreamWriter(out, vertices, edges)
	if err != nil {
		return err
	}
	if err := emit(sw.Append); err != nil {
		sw.Close()
		return err
	}
	return sw.Close()
}

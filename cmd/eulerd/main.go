// Command eulerd serves Euler-circuit computation as an HTTP/JSON job
// service: clients POST a graph (generator spec or EULGRPH1 upload),
// poll the job, and stream the resulting circuit as NDJSON.
//
// Usage:
//
//	eulerd -addr :8080 -workers 4 -backlog 64 -data /var/lib/eulerd
//
// Endpoints:
//
//	POST   /v1/jobs              submit (JSON spec or EULGRPH1 body)
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         status + report
//	GET    /v1/jobs/{id}/circuit stream the circuit as NDJSON
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/healthz           liveness + pool gauges
//	GET    /v1/metrics           counters + per-phase timings
//	GET    /debug/vars           the same counters via expvar
//
// On SIGINT/SIGTERM the server stops accepting requests and drains the
// worker pool, cancelling whatever is still running when the grace
// period expires.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service/httpapi"
	"repro/internal/service/job"
	"repro/internal/service/queue"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent jobs")
		backlog   = flag.Int("backlog", 64, "queued-job capacity")
		dataDir   = flag.String("data", "", "scratch directory (default: a fresh temp dir)")
		retention = flag.Int("retention", 100, "finished jobs to retain")
		maxUpload = flag.Int64("max-upload", httpapi.DefaultMaxUploadBytes, "max uploaded graph bytes")
		grace     = flag.Duration("grace", 30*time.Second, "shutdown grace period")
	)
	flag.Parse()

	dir := *dataDir
	if dir == "" {
		d, err := os.MkdirTemp("", "eulerd-")
		if err != nil {
			fatal(err)
		}
		dir = d
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}

	pool := queue.New(*workers, *backlog)
	store := job.NewStore(*retention)
	api := httpapi.New(httpapi.Config{
		Store:          store,
		Pool:           pool,
		DataDir:        dir,
		MaxUploadBytes: *maxUpload,
	})
	expvar.Publish("eulerd", expvar.Func(func() any { return api.MetricsSnapshot() }))

	mux := http.NewServeMux()
	mux.Handle("/v1/", api.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("eulerd: listening on %s (%d workers, backlog %d, data %s)\n",
		*addr, pool.Workers(), *backlog, dir)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Println("eulerd: draining...")
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(graceCtx); err != nil {
		fmt.Fprintf(os.Stderr, "eulerd: http shutdown: %v\n", err)
	}
	if err := pool.Drain(graceCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "eulerd: pool drain: %v\n", err)
	}
	fmt.Println("eulerd: bye")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "eulerd: %v\n", err)
	os.Exit(1)
}

// Command eulerd serves Euler-circuit computation as an HTTP/JSON job
// service: clients POST a graph (generator spec or EULGRPH1 upload),
// poll the job, and stream the resulting circuit as NDJSON.
//
// Usage:
//
//	eulerd -addr :8080 -workers 4 -backlog 64 -data /var/lib/eulerd
//
// Cluster mode splits the BSP engine across processes: a coordinator
// serves the HTTP API and fans each job's partitions out over joined
// worker processes, which host the engine workers and exchange superstep
// messages with the coordinator over length-prefixed TCP frames.
//
//	eulerd -role coordinator -addr :8080 -cluster :9090 -min-nodes 2
//	eulerd -role worker -join host:9090 -capacity 8
//
// Endpoints:
//
//	POST   /v1/jobs              submit (JSON spec or EULGRPH1 body)
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         status + report
//	GET    /v1/jobs/{id}/circuit stream the circuit as NDJSON
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/healthz           liveness + pool gauges
//	GET    /v1/metrics           counters + per-phase timings
//	GET    /v1/cluster           cluster role, nodes, and job counters
//	GET    /debug/vars           the same counters via expvar
//
// On SIGINT/SIGTERM the server stops accepting requests and drains the
// worker pool, cancelling whatever is still running when the grace
// period expires.  A worker-role process simply leaves the cluster; jobs
// it was running fail on the coordinator.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service/httpapi"
	"repro/internal/service/job"
	"repro/internal/service/queue"
)

func main() {
	var (
		role      = flag.String("role", "standalone", "process role: standalone, coordinator, or worker")
		addr      = flag.String("addr", ":8080", "HTTP listen address (standalone/coordinator)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent jobs")
		backlog   = flag.Int("backlog", 64, "queued-job capacity")
		dataDir   = flag.String("data", "", "scratch directory (default: a fresh temp dir)")
		retention = flag.Int("retention", 100, "finished jobs to retain")
		maxUpload = flag.Int64("max-upload", httpapi.DefaultMaxUploadBytes, "max uploaded graph bytes")
		grace     = flag.Duration("grace", 30*time.Second, "shutdown grace period")

		clusterAddr = flag.String("cluster", ":9090", "coordinator: cluster listen address for worker joins")
		minNodes    = flag.Int("min-nodes", 1, "coordinator: worker nodes a job waits for")
		waitNodes   = flag.Duration("wait-nodes", 30*time.Second, "coordinator: how long a job waits for min-nodes")
		stepTimeout = flag.Duration("step-timeout", 2*time.Minute, "coordinator: per-superstep barrier timeout")

		join     = flag.String("join", "", "worker: coordinator cluster address to join")
		capacity = flag.Int("capacity", runtime.GOMAXPROCS(0), "worker: engine workers this node hosts")
		nodeName = flag.String("node-name", "", "worker: name reported to the coordinator (default: hostname)")
	)
	flag.Parse()

	switch *role {
	case "worker":
		runWorkerRole(*join, *capacity, *nodeName)
	case "standalone", "coordinator":
		runServerRole(*role == "coordinator", serverConfig{
			addr: *addr, workers: *workers, backlog: *backlog, dataDir: *dataDir,
			retention: *retention, maxUpload: *maxUpload, grace: *grace,
			clusterAddr: *clusterAddr, minNodes: *minNodes, waitNodes: *waitNodes,
			stepTimeout: *stepTimeout,
		})
	default:
		fatal(fmt.Errorf("unknown role %q (want standalone, coordinator, or worker)", *role))
	}
}

// runWorkerRole joins a coordinator and hosts engine workers until
// SIGINT/SIGTERM.
func runWorkerRole(join string, capacity int, name string) {
	if join == "" {
		fatal(errors.New("worker role requires -join <coordinator cluster address>"))
	}
	if name == "" {
		if hn, err := os.Hostname(); err == nil {
			name = hn
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logf := log.New(os.Stderr, "eulerd: ", log.LstdFlags).Printf
	fmt.Printf("eulerd: worker %q joining %s (capacity %d)\n", name, join, capacity)
	err := cluster.RunWorker(ctx, join, cluster.WorkerOptions{
		Name: name, Capacity: capacity, Logf: logf,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
	fmt.Println("eulerd: worker leaving, bye")
}

type serverConfig struct {
	addr        string
	workers     int
	backlog     int
	dataDir     string
	retention   int
	maxUpload   int64
	grace       time.Duration
	clusterAddr string
	minNodes    int
	waitNodes   time.Duration
	stepTimeout time.Duration
}

// runServerRole runs the HTTP job service; as a coordinator it also opens
// the cluster listener and executes jobs across joined workers.
func runServerRole(coordinator bool, cfg serverConfig) {
	dir := cfg.dataDir
	if dir == "" {
		d, err := os.MkdirTemp("", "eulerd-")
		if err != nil {
			fatal(err)
		}
		dir = d
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}

	pool := queue.New(cfg.workers, cfg.backlog)
	store := job.NewStore(cfg.retention)
	apiCfg := httpapi.Config{
		Store:          store,
		Pool:           pool,
		DataDir:        dir,
		MaxUploadBytes: cfg.maxUpload,
	}

	var coord *cluster.Coordinator
	if coordinator {
		logf := log.New(os.Stderr, "eulerd: ", log.LstdFlags).Printf
		c, err := cluster.NewCoordinator(cfg.clusterAddr, cluster.Options{
			MinNodes:    cfg.minNodes,
			WaitNodes:   cfg.waitNodes,
			StepTimeout: cfg.stepTimeout,
			Logf:        logf,
		})
		if err != nil {
			fatal(err)
		}
		coord = c
		defer coord.Close()
		apiCfg.Runner = &cluster.Runner{Coordinator: coord}
		apiCfg.Cluster = coord
	}

	api := httpapi.New(apiCfg)
	expvar.Publish("eulerd", expvar.Func(func() any { return api.MetricsSnapshot() }))

	mux := http.NewServeMux()
	mux.Handle("/v1/", api.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Addr: cfg.addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if coordinator {
		fmt.Printf("eulerd: coordinator listening on %s (cluster %s, min %d nodes, %d job slots, data %s)\n",
			cfg.addr, coord.Addr(), cfg.minNodes, pool.Workers(), dir)
	} else {
		fmt.Printf("eulerd: listening on %s (%d workers, backlog %d, data %s)\n",
			cfg.addr, pool.Workers(), cfg.backlog, dir)
	}

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Println("eulerd: draining...")
	graceCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	if err := srv.Shutdown(graceCtx); err != nil {
		fmt.Fprintf(os.Stderr, "eulerd: http shutdown: %v\n", err)
	}
	if err := pool.Drain(graceCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "eulerd: pool drain: %v\n", err)
	}
	fmt.Println("eulerd: bye")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "eulerd: %v\n", err)
	os.Exit(1)
}

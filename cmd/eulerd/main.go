// Command eulerd serves Euler-circuit computation as an HTTP/JSON job
// service: clients POST a graph (generator spec or EULGRPH1 upload),
// poll the job, and stream the resulting circuit as NDJSON.
//
// Usage:
//
//	eulerd -addr :8080 -workers 4 -backlog 64 -data /var/lib/eulerd
//
// Beyond plain Euler circuits, the spec's "kind" field selects a
// workload family from the internal/jobkind registry — "euler"
// (default), "postman" (covering tours of non-Eulerian graphs),
// "debruijn" (de Bruijn sequences), and "superwalk" (DNA-assembly
// superwalks) — all sharing the same job pipeline, result cache, and
// cluster path, with kind-isolated fingerprints and per-kind
// kinds.<name>.{started,completed,cache_hits} metrics.
//
// Scheduling is multi-tenant by default (-sched fair): the tenant comes
// from the X-Tenant header (or a digest of X-API-Key), submissions are
// dispatched by weighted fair queueing with per-tenant queue and
// concurrency quotas (-tenants, -max-queue-per-tenant,
// -max-running-per-tenant), over-quota submissions are rejected early
// with 429 + Retry-After, and identical submissions are coalesced and
// served from a content-addressed result cache (-cache-bytes).  `-sched
// fifo` restores the original single-queue behavior (and, unless
// -cache-bytes is set explicitly, disables the result cache).
//
// Cluster mode splits the BSP engine across processes: a coordinator
// serves the HTTP API and fans each job's partitions out over joined
// worker processes, which host the engine workers and exchange superstep
// messages with the coordinator over length-prefixed TCP frames.
//
//	eulerd -role coordinator -addr :8080 -cluster :9090 -min-nodes 2
//	eulerd -role worker -join host:9090 -capacity 8
//
// Endpoints:
//
//	POST   /v1/jobs              submit (JSON spec, EULGRPH1 body, or ?base= edge diff)
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         status + report
//	GET    /v1/jobs/{id}/circuit stream the circuit as NDJSON
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/healthz           liveness + pool gauges
//	GET    /v1/metrics           counters + per-phase timings
//	GET    /v1/cluster           cluster role, nodes, and job counters
//	GET    /debug/vars           the same counters via expvar
//
// On SIGINT/SIGTERM the server stops accepting requests and drains the
// worker pool, cancelling whatever is still running when the grace
// period expires.  A worker-role process simply leaves the cluster; jobs
// it was running fail on the coordinator.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultpoint"
	"repro/internal/sched"
	"repro/internal/service/httpapi"
	"repro/internal/service/job"
)

func main() {
	var (
		role      = flag.String("role", "standalone", "process role: standalone, coordinator, or worker")
		addr      = flag.String("addr", ":8080", "HTTP listen address (standalone/coordinator)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent jobs")
		backlog   = flag.Int("backlog", 64, "queued-job capacity (fifo: the shared backlog; fair: ignored, see the per-tenant quotas)")
		dataDir   = flag.String("data", "", "scratch directory (default: a fresh temp dir)")
		retention = flag.Int("retention", 100, "finished jobs to retain")
		maxUpload = flag.Int64("max-upload", httpapi.DefaultMaxUploadBytes, "max uploaded graph bytes")
		grace     = flag.Duration("grace", 30*time.Second, "shutdown grace period")

		schedMode   = flag.String("sched", "fair", "scheduler: fair (multi-tenant WFQ) or fifo (legacy single queue)")
		tenants     = flag.String("tenants", "", "per-tenant overrides, name:weight[:maxqueue[:maxrunning]],... (e.g. gold:4,free:1:8:2)")
		maxQueueTen = flag.Int("max-queue-per-tenant", 64, "fair: default per-tenant queued-job quota")
		maxRunTen   = flag.Int("max-running-per-tenant", 0, "fair: default per-tenant concurrency quota (0 = workers)")
		maxQueueAll = flag.Int("max-queue-total", 1024, "fair: global queued-job backstop across all tenants (0 = unlimited); also caps attached-graph memory at ~4 MiB per queued job")
		cacheBytes  = flag.Int64("cache-bytes", 256<<20, "result-cache live-entry byte budget; 0 disables dedup and caching (the backing log is append-only: disk is reclaimed on restart, watch cache_log_bytes)")
		deltaBytes  = flag.Int64("delta-bytes", 64<<20, "retained delta-base replay-state byte budget for edge-diff submissions; 0 disables delta retention (requires the result cache; cluster runs never retain)")

		oocEdges     = flag.Int64("ooc-edges", 0, "solve uploaded euler jobs with at least this many edges out of core (paged disk CSR bounded by -graph-mem-bytes); 0 disables")
		graphMem     = flag.Int64("graph-mem-bytes", 0, "resident adjacency-page budget for out-of-core solves (default: 64 MiB, or GOMEMLIMIT/4 when that is smaller)")
		batchWorkers = flag.Int("batch-lane-workers", 0, "dedicated worker pool for jobs at or over -batch-lane-edges; 0 disables the batch lane")
		batchEdges   = flag.Int64("batch-lane-edges", 1<<22, "estimated-edge floor for batch-lane routing (with -batch-lane-workers > 0)")

		clusterAddr  = flag.String("cluster", ":9090", "coordinator: cluster listen address for worker joins")
		minNodes     = flag.Int("min-nodes", 1, "coordinator: worker nodes a job waits for")
		waitNodes    = flag.Duration("wait-nodes", 30*time.Second, "coordinator: how long a job waits for min-nodes")
		stepTimeout  = flag.Duration("step-timeout", 2*time.Minute, "coordinator: per-superstep barrier timeout")
		jobRetries   = flag.Int("job-retries", 2, "coordinator: retries per job after a retryable cluster failure (node lost, step timeout); each retry re-plans over the surviving nodes")
		retryBackoff = flag.Duration("retry-backoff", 500*time.Millisecond, "coordinator: pause before each job retry")
		degraded     = flag.Bool("degraded-local", false, "coordinator: when quorum is unreachable (or retries are exhausted), complete the job in-process and flag it degraded")

		join     = flag.String("join", "", "worker: coordinator cluster address to join")
		capacity = flag.Int("capacity", runtime.GOMAXPROCS(0), "worker: engine workers this node hosts")
		nodeName = flag.String("node-name", "", "worker: name reported to the coordinator (default: hostname)")

		faultSpec = flag.String("faultpoints", "", "arm fault-injection points, e.g. 'bsp.node.wire=drop,step=1' (testing; also via "+faultpoint.EnvVar+")")
	)
	flag.Parse()

	if err := faultpoint.Arm(*faultSpec); err != nil {
		fatal(err)
	}
	if err := faultpoint.ArmFromEnv(); err != nil {
		fatal(err)
	}

	// `-sched fifo` is the reproduce-old-behavior switch: unless the
	// operator asked for a cache explicitly, it turns dedup off too.
	cacheSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "cache-bytes" {
			cacheSet = true
		}
	})
	if *schedMode == "fifo" && !cacheSet {
		*cacheBytes = 0
	}
	tenantCfg, err := sched.ParseTenantSpec(*tenants)
	if err != nil {
		fatal(err)
	}

	switch *role {
	case "worker":
		runWorkerRole(*join, *capacity, *nodeName)
	case "standalone", "coordinator":
		runServerRole(*role == "coordinator", serverConfig{
			addr: *addr, workers: *workers, backlog: *backlog, dataDir: *dataDir,
			retention: *retention, maxUpload: *maxUpload, grace: *grace,
			clusterAddr: *clusterAddr, minNodes: *minNodes, waitNodes: *waitNodes,
			stepTimeout: *stepTimeout, jobRetries: *jobRetries,
			retryBackoff: *retryBackoff, degradedLocal: *degraded,
			schedMode: *schedMode, tenants: tenantCfg,
			maxQueuePerTenant: *maxQueueTen, maxRunningPerTenant: *maxRunTen,
			maxQueueTotal: *maxQueueAll, cacheBytes: *cacheBytes,
			deltaBytes: *deltaBytes,
			oocEdges:   *oocEdges, graphMemBytes: *graphMem,
			batchWorkers: *batchWorkers, batchEdges: *batchEdges,
		})
	default:
		fatal(fmt.Errorf("unknown role %q (want standalone, coordinator, or worker)", *role))
	}
}

// runWorkerRole joins a coordinator and hosts engine workers until
// SIGINT/SIGTERM.
func runWorkerRole(join string, capacity int, name string) {
	if join == "" {
		fatal(errors.New("worker role requires -join <coordinator cluster address>"))
	}
	if name == "" {
		if hn, err := os.Hostname(); err == nil {
			name = hn
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logf := log.New(os.Stderr, "eulerd: ", log.LstdFlags).Printf
	fmt.Printf("eulerd: worker %q joining %s (capacity %d)\n", name, join, capacity)
	err := cluster.RunWorker(ctx, join, cluster.WorkerOptions{
		Name: name, Capacity: capacity, Logf: logf,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
	fmt.Println("eulerd: worker leaving, bye")
}

type serverConfig struct {
	addr          string
	workers       int
	backlog       int
	dataDir       string
	retention     int
	maxUpload     int64
	grace         time.Duration
	clusterAddr   string
	minNodes      int
	waitNodes     time.Duration
	stepTimeout   time.Duration
	jobRetries    int
	retryBackoff  time.Duration
	degradedLocal bool

	schedMode           string
	tenants             map[string]sched.TenantConfig
	maxQueuePerTenant   int
	maxRunningPerTenant int
	maxQueueTotal       int
	cacheBytes          int64
	deltaBytes          int64

	oocEdges      int64
	graphMemBytes int64
	batchWorkers  int
	batchEdges    int64
}

// resolveGraphMem picks the out-of-core page budget: the flag verbatim
// when set, else 64 MiB capped at a quarter of GOMEMLIMIT so a
// memory-limited deployment leaves headroom for the engine's own state.
func resolveGraphMem(flagVal int64) int64 {
	if flagVal > 0 {
		return flagVal
	}
	budget := int64(64 << 20)
	if limit := debug.SetMemoryLimit(-1); limit < math.MaxInt64 && limit/4 < budget {
		budget = limit / 4
	}
	return budget
}

// runServerRole runs the HTTP job service; as a coordinator it also opens
// the cluster listener and executes jobs across joined workers.
func runServerRole(coordinator bool, cfg serverConfig) {
	dir := cfg.dataDir
	if dir == "" {
		d, err := os.MkdirTemp("", "eulerd-")
		if err != nil {
			fatal(err)
		}
		dir = d
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}

	var scheduler sched.Scheduler
	switch cfg.schedMode {
	case "fifo":
		scheduler = sched.NewFIFO(cfg.workers, cfg.backlog)
	case "fair":
		scheduler = sched.NewFair(sched.FairConfig{
			Workers:             cfg.workers,
			MaxQueuePerTenant:   cfg.maxQueuePerTenant,
			MaxRunningPerTenant: cfg.maxRunningPerTenant,
			MaxQueueTotal:       cfg.maxQueueTotal,
			Tenants:             cfg.tenants,
		})
	default:
		fatal(fmt.Errorf("unknown scheduler %q (want fair or fifo)", cfg.schedMode))
	}
	var cache *sched.ResultCache
	if cfg.cacheBytes > 0 {
		c, err := sched.NewResultCache(filepath.Join(dir, "result-cache.log"), cfg.cacheBytes)
		if err != nil {
			fatal(err)
		}
		cache = c
	}
	var deltas *sched.DeltaStore
	if cache != nil && cfg.deltaBytes > 0 {
		// Delta retention rides on the result cache: base fingerprints
		// are only computed when submissions are content-addressed.
		deltas = sched.NewDeltaStore(cfg.deltaBytes)
	}
	// The batch lane is a second scheduler with its own worker pool;
	// big jobs (estimated edges >= batchEdges) queue there so they
	// cannot starve interactive submissions.
	var batchSched sched.Scheduler
	if cfg.batchWorkers > 0 && cfg.batchEdges > 0 {
		batchSched = sched.NewFair(sched.FairConfig{
			Workers:           cfg.batchWorkers,
			MaxQueuePerTenant: cfg.maxQueuePerTenant,
			MaxQueueTotal:     cfg.maxQueueTotal,
			Tenants:           cfg.tenants,
		})
	}
	store := job.NewStore(cfg.retention)
	apiCfg := httpapi.Config{
		Store:              store,
		Sched:              scheduler,
		Cache:              cache,
		Deltas:             deltas,
		DataDir:            dir,
		MaxUploadBytes:     cfg.maxUpload,
		BatchSched:         batchSched,
		BatchEdgeThreshold: cfg.batchEdges,
		OOCEdgeThreshold:   cfg.oocEdges,
		GraphMemBytes:      resolveGraphMem(cfg.graphMemBytes),
	}

	var coord *cluster.Coordinator
	if coordinator {
		logf := log.New(os.Stderr, "eulerd: ", log.LstdFlags).Printf
		c, err := cluster.NewCoordinator(cfg.clusterAddr, cluster.Options{
			MinNodes:      cfg.minNodes,
			WaitNodes:     cfg.waitNodes,
			StepTimeout:   cfg.stepTimeout,
			JobRetries:    cfg.jobRetries,
			RetryBackoff:  cfg.retryBackoff,
			DegradedLocal: cfg.degradedLocal,
			Logf:          logf,
		})
		if err != nil {
			fatal(err)
		}
		coord = c
		defer coord.Close()
		apiCfg.Runner = &cluster.Runner{Coordinator: coord}
		apiCfg.Cluster = coord
	}

	api := httpapi.New(apiCfg)
	expvar.Publish("eulerd", expvar.Func(func() any { return api.MetricsSnapshot() }))

	mux := http.NewServeMux()
	mux.Handle("/v1/", api.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Addr: cfg.addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	cacheDesc := "off"
	if cache != nil {
		cacheDesc = fmt.Sprintf("%d MiB", cfg.cacheBytes>>20)
	}
	if coordinator {
		fmt.Printf("eulerd: coordinator listening on %s (cluster %s, min %d nodes, %d job slots, sched %s, cache %s, data %s)\n",
			cfg.addr, coord.Addr(), cfg.minNodes, scheduler.Workers(), cfg.schedMode, cacheDesc, dir)
	} else {
		fmt.Printf("eulerd: listening on %s (%d workers, sched %s, cache %s, data %s)\n",
			cfg.addr, scheduler.Workers(), cfg.schedMode, cacheDesc, dir)
	}

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Println("eulerd: draining...")
	graceCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	if err := srv.Shutdown(graceCtx); err != nil {
		fmt.Fprintf(os.Stderr, "eulerd: http shutdown: %v\n", err)
	}
	if err := scheduler.Drain(graceCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "eulerd: scheduler drain: %v\n", err)
	}
	if batchSched != nil {
		if err := batchSched.Drain(graceCtx); err != nil && !errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "eulerd: batch-lane drain: %v\n", err)
		}
	}
	if cache != nil {
		if err := cache.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "eulerd: cache close: %v\n", err)
		}
	}
	fmt.Println("eulerd: bye")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "eulerd: %v\n", err)
	os.Exit(1)
}

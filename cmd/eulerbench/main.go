// Command eulerbench regenerates the paper's tables and figures as text
// reports.  Each experiment builds its workload from scratch at the chosen
// scale factor, runs the distributed algorithm on the BSP engine, and
// prints the rows or series the paper plots.
//
// Usage:
//
//	eulerbench -experiment all            # everything, at 1/100 scale
//	eulerbench -experiment fig8 -scale 0.02
//	eulerbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID (see -list)")
		scale      = flag.Float64("scale", 0.01, "fraction of the paper's graph sizes")
		seed       = flag.Int64("seed", 42, "generator seed")
		verifyRuns = flag.Bool("verify", false, "re-verify every produced circuit (slower)")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	o := bench.DefaultOptions()
	o.ScaleFactor = *scale
	o.Seed = *seed
	o.Verify = *verifyRuns

	start := time.Now()
	out, err := bench.RunByID(*experiment, o)
	if out != "" {
		fmt.Print(out)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "eulerbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted %q at scale %.3f in %v\n", *experiment, *scale, time.Since(start).Round(time.Millisecond))
}

package euler

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/bsp"
	"repro/internal/euler"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/seq"
)

// benchOptions scales the paper's graphs down far enough that each
// experiment iteration completes in roughly a second; raise the factor
// (cmd/eulerbench -scale) for the full-size reports.
func benchOptions() bench.Options {
	o := bench.DefaultOptions()
	o.ScaleFactor = 0.002
	return o
}

// runExperiment is the shared driver for the per-table/figure benchmarks:
// each iteration regenerates the complete artefact.
func runExperiment(b *testing.B, id string) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := bench.RunByID(id, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkTable1(b *testing.B)                 { runExperiment(b, "table1") }
func BenchmarkFig4DegreeDistribution(b *testing.B) { runExperiment(b, "fig4") }
func BenchmarkFig5WeakScaling(b *testing.B)        { runExperiment(b, "fig5") }
func BenchmarkFig6TimeSplit(b *testing.B)          { runExperiment(b, "fig6") }
func BenchmarkFig7Phase1Complexity(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8MemoryState(b *testing.B)        { runExperiment(b, "fig8") }
func BenchmarkFig9VertexComposition(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkCoordinationCost(b *testing.B)       { runExperiment(b, "coord") }

// benchGraph builds one shared mid-size Eulerian RMAT input for the
// micro-benchmarks (~50k vertices, ~130k undirected edges).
func benchGraph(b *testing.B) *Graph {
	b.Helper()
	g, _ := NewEulerianRMAT(50_000, 5, 42)
	return g
}

// BenchmarkDistributedEndToEnd measures the full pipeline (partition,
// Phases 1–3) per mode at 8 partitions.
func BenchmarkDistributedEndToEnd(b *testing.B) {
	g := benchGraph(b)
	for _, mode := range []Mode{ModeCurrent, ModeDedup, ModeProposed} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(g.NumEdges())
			for i := 0; i < b.N; i++ {
				c, err := FindCircuit(g, WithPartitions(8), WithMode(mode))
				if err != nil {
					b.Fatal(err)
				}
				if int64(len(c.Steps)) != g.NumEdges() {
					b.Fatal("short circuit")
				}
			}
		})
	}
}

// BenchmarkSequentialHierholzer is the O(|E|) baseline on the same input.
func BenchmarkSequentialHierholzer(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.SetBytes(g.NumEdges())
	for i := 0; i < b.N; i++ {
		steps, err := FindCircuitSeq(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		if int64(len(steps)) != g.NumEdges() {
			b.Fatal("short circuit")
		}
	}
}

// BenchmarkMakkiBaseline measures the vertex-centric walker's superstep
// cost on a small graph (its O(|E|) barriers make larger inputs pointless).
func BenchmarkMakkiBaseline(b *testing.B) {
	g, _ := NewEulerianRMAT(2_000, 4, 7)
	a := partition.LDG(g, 4, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		steps, m, err := seq.Makki(g, a, bsp.CostModel{})
		if err != nil {
			b.Fatal(err)
		}
		if int64(len(steps)) != g.NumEdges() || m.Supersteps < int(g.NumEdges()) {
			b.Fatal("unexpected makki result")
		}
	}
}

// BenchmarkPhases12 measures the distributed Phases 1–2 (tours, merges,
// transfers) without Phase 3's unroll, isolating the BSP pipeline cost.
func BenchmarkPhases12(b *testing.B) {
	g := benchGraph(b)
	a := partition.LDG(g, 4, 1)
	b.ReportAllocs()
	b.SetBytes(g.NumEdges())
	for i := 0; i < b.N; i++ {
		if _, err := euler.Run(g, a, euler.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRMATGenerate measures the parallel generator.
func BenchmarkRMATGenerate(b *testing.B) {
	p := gen.DefaultRMAT(16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := gen.RMAT(p)
		if g.NumVertices() != 1<<16 {
			b.Fatal("bad graph")
		}
	}
}

// BenchmarkEulerize measures the degree-fixing pass.
func BenchmarkEulerize(b *testing.B) {
	raw := gen.RMAT(gen.DefaultRMAT(16, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eg, _ := gen.Eulerize(raw)
		if !eg.IsEulerian() {
			b.Fatal("not Eulerian")
		}
	}
}

// BenchmarkPartitionLDG measures the streaming partitioner.
func BenchmarkPartitionLDG(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := partition.LDG(g, 8, 1)
		if err := a.Validate(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStateEncode measures the merge-transfer serialisation that the
// shuffle cost model charges for.
func BenchmarkStateEncode(b *testing.B) {
	g := benchGraph(b)
	a := partition.LDG(g, 4, 1)
	meta, err := euler.BuildMetaGraph(g, a)
	if err != nil {
		b.Fatal(err)
	}
	tree := euler.BuildMergeTree(meta, euler.GreedyMaxWeight)
	states, _, err := euler.BuildLeafStates(g, a, tree, euler.ModeCurrent)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := euler.EncodeState(states[0])
		if _, err := euler.DecodeState(buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(buf)))
	}
}

// BenchmarkUnroll isolates Phase 3 on a prepared registry.
func BenchmarkUnroll(b *testing.B) {
	g := benchGraph(b)
	a := partition.LDG(g, 8, 1)
	res, err := euler.Run(g, a, euler.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(g.NumEdges())
	for i := 0; i < b.N; i++ {
		var n int64
		if err := res.Registry.Unroll(func(euler.Step) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != g.NumEdges() {
			b.Fatal("short unroll")
		}
	}
}

// --- Ablation benches (DESIGN.md §4) ---

// BenchmarkAblationMatching compares merge-pair strategies end to end.
func BenchmarkAblationMatching(b *testing.B) {
	g := benchGraph(b)
	a := partition.LDG(g, 8, 1)
	for _, s := range []struct {
		name  string
		strat euler.MatchStrategy
	}{
		{"greedy-max", euler.GreedyMaxWeight},
		{"greedy-min", euler.GreedyMinWeight},
		{"random", euler.RandomMatch(7)},
	} {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := euler.Run(g, a, euler.Config{Strategy: s.strat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPartitioner compares LDG vs hash end to end.
func BenchmarkAblationPartitioner(b *testing.B) {
	g := benchGraph(b)
	for _, p := range []struct {
		name string
		a    partition.Assignment
	}{
		{"ldg", partition.LDG(g, 8, 1)},
		{"hash", partition.Hash(g, 8)},
	} {
		b.Run(p.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := euler.Run(g, p.a, euler.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDedup isolates the Section 5 modes (the dedup-only mode
// vs full proposal vs the paper's current design).
func BenchmarkAblationDedup(b *testing.B) {
	g := benchGraph(b)
	a := partition.LDG(g, 8, 1)
	for _, mode := range []Mode{ModeCurrent, ModeDedup, ModeProposed} {
		b.Run(mode.String(), func(b *testing.B) {
			var longs int64
			for i := 0; i < b.N; i++ {
				res, err := euler.Run(g, a, euler.Config{Mode: mode})
				if err != nil {
					b.Fatal(err)
				}
				longs = res.Report.Levels[0].CumulativeLongs
			}
			b.ReportMetric(float64(longs), "level0-longs")
		})
	}
}

// BenchmarkAblationSpill compares in-memory vs on-disk body stores.
func BenchmarkAblationSpill(b *testing.B) {
	g := benchGraph(b)
	b.Run("mem", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FindCircuit(g, WithPartitions(8)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("disk", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			if _, err := FindCircuit(g, WithPartitions(8), WithSpillDir(dir)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScalingPartitions sweeps the partition count on a fixed graph
// (the strong-scaling axis of Fig. 5).
func BenchmarkScalingPartitions(b *testing.B) {
	g := benchGraph(b)
	for _, k := range []int32{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("p%d", k), func(b *testing.B) {
			a := partition.LDG(g, k, 1)
			for i := 0; i < b.N; i++ {
				if _, err := euler.Run(g, a, euler.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

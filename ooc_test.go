package euler

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/oocgraph"
)

// oocTestGraphs are the Eulerian inputs the out-of-core path must solve
// byte-identically to the in-memory path.
func oocTestGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	rmat, _ := NewEulerianRMAT(1<<9, 6, 17)
	return map[string]*Graph{
		"torus":         NewTorus(12, 8),
		"ringOfCliques": NewRingOfCliques(6, 7),
		"rmat":          rmat,
	}
}

// TestFindCircuitStreamSourceByteIdentity solves each input twice — once
// in memory, once through a paged disk CSR with a page budget small
// enough to force eviction — and requires the emitted step sequences to
// match exactly.
func TestFindCircuitStreamSourceByteIdentity(t *testing.T) {
	for name, g := range oocTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			var want []Step
			if _, err := FindCircuitStream(g, func(s Step) error {
				want = append(want, s)
				return nil
			}, WithPartitions(4)); err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			path := filepath.Join(dir, "graph.bin")
			if err := graph.WriteFile(path, g); err != nil {
				t.Fatal(err)
			}
			pg, err := oocgraph.BuildPaged(path, oocgraph.BuildOptions{
				Dir:        dir,
				PageHalves: 128,
				MemBytes:   8 * 128 * 16, // eight pages resident
			})
			if err != nil {
				t.Fatal(err)
			}
			defer pg.Close()
			if err := CheckInputSource(pg); err != nil {
				t.Fatal(err)
			}

			var got []Step
			report, err := FindCircuitStreamSource(pg, filepath.Join(dir, "spill"), func(s Step) error {
				got = append(got, s)
				return nil
			}, WithPartitions(4))
			if err != nil {
				t.Fatal(err)
			}
			if report == nil {
				t.Fatal("nil report")
			}
			if len(got) != len(want) {
				t.Fatalf("out-of-core circuit has %d steps, in-memory %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: out-of-core %+v, in-memory %+v", i, got[i], want[i])
				}
			}
			if err := Verify(g, got); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFindCircuitStreamSourceEncodedIdentity checks identity at the wire
// level too: the encoded step streams must be byte-equal.
func TestFindCircuitStreamSourceEncodedIdentity(t *testing.T) {
	g := NewRingOfCliques(4, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.bin")
	if err := graph.WriteFile(path, g); err != nil {
		t.Fatal(err)
	}

	var memSteps, oocSteps []Step
	if _, err := FindCircuitStream(g, func(s Step) error {
		memSteps = append(memSteps, s)
		return nil
	}, WithPartitions(4)); err != nil {
		t.Fatal(err)
	}

	pg, err := oocgraph.BuildPaged(path, oocgraph.BuildOptions{Dir: dir, PageHalves: 64, MemBytes: 4 * 64 * 16})
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	if _, err := FindCircuitStreamSource(pg, "", func(s Step) error {
		oocSteps = append(oocSteps, s)
		return nil
	}, WithPartitions(4)); err != nil {
		t.Fatal(err)
	}
	mem := graph.AppendSteps(nil, memSteps)
	ooc := graph.AppendSteps(nil, oocSteps)
	if !bytes.Equal(mem, ooc) {
		t.Fatalf("encoded circuits differ: %d vs %d bytes", len(mem), len(ooc))
	}
}

func TestCheckInputSourceRejects(t *testing.T) {
	oddB := NewBuilder(3, 2) // path 0-1-2: endpoints have odd degree
	oddB.AddEdge(0, 1)
	oddB.AddEdge(1, 2)
	if err := CheckInputSource(oddB.Build()); err == nil {
		t.Fatal("odd-degree graph accepted")
	}
	// Two disjoint cycles: even everywhere, disconnected.
	b := NewBuilder(8, 8)
	for _, e := range [][2]int64{{0, 1}, {1, 2}, {2, 0}, {4, 5}, {5, 6}, {6, 4}} {
		b.AddEdge(e[0], e[1])
	}
	if err := CheckInputSource(b.Build()); err == nil {
		t.Fatal("disconnected graph accepted")
	}
	if err := CheckInputSource(NewTorus(4, 4)); err != nil {
		t.Fatalf("torus rejected: %v", err)
	}
}

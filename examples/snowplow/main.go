// Snow-plow route planning — the arc-routing application the paper cites
// (districting for salt spreading, Euler tours and the Chinese postman),
// served through the "postman" workload kind.  The example is a thin
// client of the jobkind registry: it submits the same normalised request
// an eulerd server would resolve, solves it through the registry's
// library path, and re-verifies the tour with the kind's own verifier.
//
//	go run ./examples/snowplow
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/jobkind"
)

const (
	blocksX  = 60
	blocksY  = 40
	closures = 0.10 // fraction of streets closed for construction
)

func main() {
	// 1. Build the street network: a grid with ~10% of streets closed,
	//    reduced to its largest connected piece — the same "grid"
	//    generator family a {"kind":"postman"} submission names.
	city := gen.StreetGrid(blocksX, blocksY, closures, 11)
	fmt.Printf("city: %d intersections, %d streets\n", city.NumVertices(), city.NumEdges())

	// 2. Resolve and normalise the request exactly as the server would.
	kind := jobkind.MustGet("postman")
	req := jobkind.Request{Options: jobkind.Options{Parts: 6, Seed: 3}}
	if err := kind.Normalize(&req); err != nil {
		log.Fatal(err)
	}

	// 3. Solve through the registry: the postman kind Eulerises the grid
	//    (deadheading edges pairing odd intersections, the classic
	//    Chinese-postman repair) and routes the multigraph through the
	//    paper's partition-centric engine.  A nil runner solves
	//    in-process, as a standalone eulerd does.
	var steps []graph.Step
	if _, err := kind.Solve(context.Background(), req, city, nil, func(st graph.Step) error {
		steps = append(steps, st)
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// 4. Re-verify, as the load harness does for every served result.
	if err := kind.Verify(req, city, steps); err != nil {
		log.Fatal(err)
	}

	deadheads := 0
	for _, st := range steps {
		if st.Edge < 0 { // the sink codec packs "revisit" into the sign
			deadheads++
		}
	}
	depot := steps[0].From
	fmt.Printf("plow tour: %d street traversals (%d deadheading), depot at intersection %d, closed loop ✓\n",
		len(steps), deadheads, depot)
	fmt.Printf("deadheading share of the tour: %.1f%%\n",
		100*float64(deadheads)/float64(len(steps)))

	// 5. Print the first few turns of the route sheet, in the same NDJSON
	//    frames GET /v1/jobs/{id}/circuit streams.
	fmt.Println("\nroute sheet (first 5 wire lines):")
	var buf []byte
	for _, st := range steps[:5] {
		buf = kind.AppendLine(buf[:0], st)
		fmt.Printf("  %s", buf)
	}
}

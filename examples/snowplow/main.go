// Snow-plow route planning — the arc-routing application the paper cites
// (districting for salt spreading, Euler tours and the Chinese postman).
// A synthetic city grid with some closed streets is Eulerised (deadheading
// edges added between odd intersections, the classic Chinese-postman
// repair) and the distributed algorithm produces a single plow tour that
// covers every street exactly once and returns to the depot.
//
//	go run ./examples/snowplow
package main

import (
	"fmt"
	"log"
	"math/rand"

	euler "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

const (
	blocksX = 60
	blocksY = 40
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// 1. Build the street network: a grid with ~10% of streets closed for
	//    construction, keeping the largest connected piece.
	city := buildCity(rng)
	fmt.Printf("city: %d intersections, %d streets\n", city.NumVertices(), city.NumEdges())

	// 2. Chinese-postman repair: add deadheading edges pairing odd-degree
	//    intersections so a closed tour exists.  gen.Eulerize pairs odd
	//    vertices by degree, the same tool the paper uses on RMAT graphs.
	plowable, stats := gen.Eulerize(city)
	fmt.Printf("deadheading: %d odd intersections paired with %d extra traversals (%.1f%% overhead)\n",
		stats.OddVertices, stats.AddedEdges, stats.ExtraPercent)

	// 3. One plow tour over the whole city, computed across 6 partitions
	//    (think: 6 dispatch zones, merged pairwise per the merge tree).
	c, err := euler.FindCircuit(plowable, euler.WithPartitions(6), euler.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	if err := euler.Verify(plowable, c.Steps); err != nil {
		log.Fatal(err)
	}

	depot := c.Steps[0].From
	fmt.Printf("plow tour: %d street traversals, depot at intersection %d, closed loop ✓\n",
		len(c.Steps), depot)
	fmt.Printf("deadheading share of the tour: %.1f%%\n",
		100*float64(stats.AddedEdges)/float64(len(c.Steps)))
	fmt.Printf("coordination: %d supersteps over %d zones (merge-tree height %d)\n",
		c.Report.BSP.Supersteps, 6, c.Report.TreeHeight)

	// 4. Print the first few turns of the route sheet.
	fmt.Println("\nroute sheet (first 10 turns):")
	for i, s := range c.Steps[:10] {
		fmt.Printf("  %2d. %s -> %s\n", i+1, corner(s.From), corner(s.To))
	}
}

// buildCity returns a blocksX×blocksY street grid with random closures,
// reduced to its largest connected component.
func buildCity(rng *rand.Rand) *graph.Graph {
	id := func(x, y int64) graph.VertexID { return y*blocksX + x }
	b := graph.NewBuilder(blocksX*blocksY, 2*blocksX*blocksY)
	for y := int64(0); y < blocksY; y++ {
		for x := int64(0); x < blocksX; x++ {
			if x+1 < blocksX && rng.Float64() > 0.10 {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < blocksY && rng.Float64() > 0.10 {
				b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	g, _ := graph.LargestComponent(b.Build())
	return g
}

// corner renders an intersection as its grid coordinates (approximate for
// the renumbered component).
func corner(v graph.VertexID) string {
	return fmt.Sprintf("(%d,%d)", v%blocksX, v/blocksX)
}

// Quickstart: generate an Eulerian power-law graph the way the paper does,
// find its Euler circuit with the partition-centric distributed algorithm,
// verify it, and print the run report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	euler "repro"
)

func main() {
	// 1. Build an input: RMAT power law, largest component, Eulerised
	//    (every vertex even degree) — the paper's Sec. 4.2 pipeline.
	g, extra := euler.NewEulerianRMAT(100_000, 5, 42)
	fmt.Printf("input: %d vertices, %d undirected edges (eulerizer added %.1f%%)\n",
		g.NumVertices(), g.NumEdges(), extra)
	if err := euler.CheckInput(g); err != nil {
		log.Fatal(err)
	}

	// 2. Find the circuit distributed across 8 partitions, with the
	//    Section 5 memory heuristics and the commodity-cluster cost model.
	start := time.Now()
	c, err := euler.FindCircuit(g,
		euler.WithPartitions(8),
		euler.WithMode(euler.ModeProposed),
		euler.WithCommodityCluster(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed: %d steps in %v wall (modeled cluster time %v, %d supersteps)\n",
		len(c.Steps), time.Since(start).Round(time.Millisecond),
		c.Report.BSP.ModeledTotal.Round(time.Millisecond),
		c.Report.BSP.Supersteps)

	// 3. Verify independently.
	if err := euler.Verify(g, c.Steps); err != nil {
		log.Fatal(err)
	}
	fmt.Println("circuit verified: every edge exactly once, closed walk")

	// 4. Compare with the sequential Hierholzer baseline.
	start = time.Now()
	seqSteps, err := euler.FindCircuitSeq(g, c.Steps[0].From)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential hierholzer: %d steps in %v\n",
		len(seqSteps), time.Since(start).Round(time.Millisecond))

	// 5. Peek at the per-level memory accounting behind the paper's Fig. 8.
	fmt.Println("\nper-level memory state (Longs):")
	for _, l := range c.Report.Levels {
		fmt.Printf("  level %d: %d live partitions, cumulative %d, average %d, parked %d\n",
			l.Level, l.Live, l.CumulativeLongs, l.AvgLongs, l.ParkedLongs)
	}
}

// CMOS gate ordering by Euler path — the circuit-design application the
// paper cites (Roy 2007: optimum gate ordering of CMOS logic gates).  In a
// static CMOS cell the pull-up and pull-down networks share the same gate
// signals; a layout with no diffusion breaks exists when the transistor
// network admits an Euler path visiting every transistor once with a
// consistent gate ordering.
//
// This example models the pull-down network of a complex AOI gate as a
// multigraph (vertices = circuit nodes, edges = transistors labelled by
// their gate signal), finds an Euler path, and prints the resulting
// transistor chain: adjacent transistors share a diffusion node, so the
// chain needs no breaks.
//
//	go run ./examples/cmos
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/seq"
	"repro/internal/verify"
)

func main() {
	// Pull-down network of F = NOT(A·B + C·(D + E)) with an extra parallel
	// branch: nodes are 0=GND, 1=output, 2..4 internal diffusion nodes.
	//
	//   output —A— n2 —B— GND        (A·B path)
	//   output —C— n3 —D— GND        (C·D path)
	//   n3 —E— GND                   (C·E path)
	//   output —A— n4 —E— GND        (shared-signal branch)
	type transistor struct {
		from, to graph.VertexID
		gate     string
	}
	transistors := []transistor{
		{1, 2, "A"}, {2, 0, "B"},
		{1, 3, "C"}, {3, 0, "D"}, {3, 0, "E"},
		{1, 4, "A"}, {4, 0, "E"},
	}

	b := graph.NewBuilder(5, len(transistors))
	gates := make(map[graph.EdgeID]string)
	for _, tr := range transistors {
		id := b.AddEdge(tr.from, tr.to)
		gates[id] = tr.gate
	}
	network := b.Build()
	fmt.Printf("pull-down network: %d nodes, %d transistors\n",
		network.NumVertices(), network.NumEdges())

	// An Euler PATH needs 0 or 2 odd-degree nodes.  With 2k odd nodes the
	// standard trick adds k-1 virtual "diffusion break" edges; here we let
	// the Eulerizer pair the odd nodes and count real breaks.
	odd := network.OddVertices()
	fmt.Printf("odd-degree nodes: %v\n", odd)
	walkable, stats := gen.Eulerize(network)
	fmt.Printf("virtual break edges added: %d\n", stats.AddedEdges)

	steps, err := seq.Hierholzer(walkable, odd[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := verify.Circuit(walkable, steps); err != nil {
		log.Fatal(err)
	}

	// Print the transistor chain; virtual edges appear as diffusion breaks.
	fmt.Println("\ngate ordering (── = shared diffusion, ∥ = break):")
	breaks := 0
	for i, s := range steps {
		if gate, ok := gates[s.Edge]; ok {
			fmt.Printf("  %d. node%d ──[%s]── node%d\n", i+1, s.From, gate, s.To)
		} else {
			breaks++
			fmt.Printf("  %d. node%d ∥ break ∥ node%d\n", i+1, s.From, s.To)
		}
	}
	fmt.Printf("\nlayout: %d transistors in a row with %d diffusion break(s)\n",
		len(gates), breaks)
}

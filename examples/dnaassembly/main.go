// DNA fragment assembly by Eulerian superwalk — the application the
// paper's introduction cites (Pevzner et al., PNAS 2001), served through
// the "superwalk" workload kind.  A synthetic genome is shredded into
// overlapping k-mers; each k-mer is a directed edge between its
// (k-1)-mer prefix and suffix in the de Bruijn graph; an Euler path over
// those edges spells the genome back out.  The example is a thin client
// of the jobkind registry: the same normalised request a
// {"kind":"superwalk"} submission resolves to, solved through the
// registry's library path and re-verified with the kind's verifier.
//
//	go run ./examples/dnaassembly
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/graph"
	"repro/internal/jobkind"
	"repro/internal/seq"
)

const (
	genomeLen = 5_000
	k         = 21 // k-mer length
	seed      = 7
)

func main() {
	kind := jobkind.MustGet("superwalk")
	req := jobkind.Request{Superwalk: &jobkind.SuperwalkSpec{GenomeLen: genomeLen, K: k, Seed: seed}}
	if err := kind.Normalize(&req); err != nil {
		log.Fatal(err)
	}

	genome := seq.SyntheticGenome(genomeLen, seed)
	fmt.Printf("synthetic genome: %d bases (first 60: %s…)\n", genomeLen, genome[:60])
	fmt.Printf("shredded into %d %d-mers\n", genomeLen-k+1, k)

	// Solve in-process: the kind shreds the same genome server-side,
	// builds the de Bruijn graph, and walks the superwalk.  The sink
	// frame packs one base per Step.Edge.
	var steps []graph.Step
	if _, err := kind.Solve(context.Background(), req, nil, nil, func(st graph.Step) error {
		steps = append(steps, st)
		return nil
	}); err != nil {
		log.Fatalf("assembly failed: %v", err)
	}

	// Re-verify, as the load harness does for every served result: the
	// assembled string shreds into exactly the input k-mer spectrum —
	// the actual invariant Eulerian assembly guarantees.
	if err := kind.Verify(req, nil, steps); err != nil {
		log.Fatal(err)
	}

	var b strings.Builder
	for _, st := range steps {
		b.WriteByte(byte(st.Edge))
	}
	assembled := b.String()
	if assembled == genome {
		fmt.Printf("assembled %d bases: exact reconstruction ✓\n", len(assembled))
	} else {
		// With repeats longer than k-1 the Euler path need not be unique;
		// any valid superwalk is still a consistent assembly of all
		// k-mers, and Verify above has pinned the spectrum.
		fmt.Printf("assembled %d bases: valid alternative Eulerian assembly (genome has repeats ≥ %d), spectrum identical ✓\n",
			len(assembled), k-1)
	}

	// The wire form GET /v1/jobs/{id}/circuit streams:
	fmt.Printf("first wire line: %s", kind.AppendLine(nil, steps[0]))
}

// DNA fragment assembly by Eulerian path — the application the paper's
// introduction cites (Pevzner et al., PNAS 2001).  A synthetic genome is
// shredded into overlapping k-mers; each k-mer is a directed edge between
// its (k-1)-mer prefix and suffix in the de Bruijn graph; an Euler path
// over those edges spells the genome back out.
//
//	go run ./examples/dnaassembly
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/seq"
)

const (
	genomeLen = 5_000
	k         = 21 // k-mer length
)

func main() {
	rng := rand.New(rand.NewSource(7))
	genome := randomGenome(rng, genomeLen)
	fmt.Printf("synthetic genome: %d bases (first 60: %s…)\n", genomeLen, genome[:60])

	// Shred into every k-mer, as an idealised error-free sequencer would.
	kmers := make([]string, 0, genomeLen-k+1)
	for i := 0; i+k <= len(genome); i++ {
		kmers = append(kmers, genome[i:i+k])
	}
	fmt.Printf("shredded into %d %d-mers\n", len(kmers), k)

	// Build the de Bruijn graph: vertices are (k-1)-mers, each k-mer is a
	// directed edge prefix→suffix labelled with the k-mer itself.
	ids := make(map[string]int64)
	vertexID := func(s string) int64 {
		if id, ok := ids[s]; ok {
			return id
		}
		id := int64(len(ids))
		ids[s] = id
		return id
	}
	d := seq.NewDigraph()
	for _, km := range kmers {
		d.AddEdge(vertexID(km[:k-1]), vertexID(km[1:]), km)
	}
	fmt.Printf("de Bruijn graph: %d vertices, %d edges\n", len(ids), d.NumEdges())

	// Walk the Euler path and re-spell the genome: the first k-mer whole,
	// then the last base of each subsequent k-mer.
	ordered, err := d.EulerPath()
	if err != nil {
		log.Fatalf("assembly failed: %v", err)
	}
	var b strings.Builder
	b.WriteString(ordered[0])
	for _, km := range ordered[1:] {
		b.WriteByte(km[k-1])
	}
	assembled := b.String()

	if assembled == genome {
		fmt.Printf("assembled %d bases: exact reconstruction ✓\n", len(assembled))
	} else {
		// With repeats longer than k-1 the Euler path need not be unique;
		// any valid path is still a consistent assembly of all k-mers.
		fmt.Printf("assembled %d bases: valid alternative Eulerian assembly (genome has repeats ≥ %d)\n",
			len(assembled), k-1)
		verifyKmerSpectrum(assembled, genome)
	}
}

// verifyKmerSpectrum checks both strings shred into the same k-mer
// multiset — the actual invariant Eulerian assembly guarantees.
func verifyKmerSpectrum(a, b string) {
	spec := func(s string) map[string]int {
		m := make(map[string]int)
		for i := 0; i+k <= len(s); i++ {
			m[s[i:i+k]]++
		}
		return m
	}
	sa, sb := spec(a), spec(b)
	if len(sa) != len(sb) {
		log.Fatalf("k-mer spectra differ in size: %d vs %d", len(sa), len(sb))
	}
	for km, c := range sa {
		if sb[km] != c {
			log.Fatalf("k-mer %s count %d vs %d", km, c, sb[km])
		}
	}
	fmt.Println("k-mer spectra identical ✓")
}

func randomGenome(rng *rand.Rand, n int) string {
	const bases = "ACGT"
	b := make([]byte, n)
	for i := range b {
		b[i] = bases[rng.Intn(4)]
	}
	return string(b)
}

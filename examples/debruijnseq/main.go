// De Bruijn sequence generation — the classic constructive application of
// directed Euler circuits: B(k, n), the shortest cyclic sequence containing
// every length-n string over a k-letter alphabet exactly once, served
// through the "debruijn" workload kind.  The example is a thin client of
// the jobkind registry: the same normalised request a
// {"kind":"debruijn"} submission resolves to, solved through the
// registry's library path and re-verified with the kind's verifier.
//
//	go run ./examples/debruijnseq
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/graph"
	"repro/internal/jobkind"
)

const (
	k = 2  // alphabet size
	n = 12 // window length: B(2,12) has 4096 symbols
)

func main() {
	kind := jobkind.MustGet("debruijn")
	req := jobkind.Request{DeBruijn: &jobkind.DeBruijnSpec{Alphabet: k, Length: n}}
	if err := kind.Normalize(&req); err != nil {
		log.Fatal(err)
	}

	// Solve in-process: the kind walks an Euler circuit of the directed
	// de Bruijn graph on (n-1)-mers, one appended symbol per edge.  The
	// sink frame packs each symbol into Step.Edge.
	var steps []graph.Step
	if _, err := kind.Solve(context.Background(), req, nil, nil, func(st graph.Step) error {
		steps = append(steps, st)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("de Bruijn sequence B(%d,%d): %d symbols\n", k, n, len(steps))

	// Re-verify, as the load harness does for every served result: every
	// length-n window occurs exactly once cyclically.
	if err := kind.Verify(req, nil, steps); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: all %d length-%d windows occur exactly once ✓\n", len(steps), n)

	var b strings.Builder
	for _, st := range steps[:64] {
		fmt.Fprintf(&b, "%d", st.Edge)
	}
	fmt.Printf("first 64 symbols: %s…\n", b.String())

	// The wire form GET /v1/jobs/{id}/circuit streams:
	fmt.Printf("first wire line: %s", kind.AppendLine(nil, steps[0]))
}

// De Bruijn sequence generation — the classic constructive application of
// directed Euler circuits: B(k, n), the shortest cyclic sequence containing
// every length-n string over a k-letter alphabet exactly once, is the edge
// sequence of an Euler circuit of the de Bruijn graph on (n-1)-mers.
//
//	go run ./examples/debruijnseq
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/seq"
)

const (
	k = 2  // alphabet size
	n = 12 // substring length: B(2,12) has 4096 symbols
)

func main() {
	// Vertices are (n-1)-symbol states; each edge appends one symbol.
	// Vertex IDs encode the state in base k.
	states := int64(1)
	for i := 0; i < n-1; i++ {
		states *= k
	}
	d := seq.NewDigraph()
	for state := int64(0); state < states; state++ {
		for sym := int64(0); sym < k; sym++ {
			next := (state*k + sym) % states
			d.AddEdge(state, next, fmt.Sprintf("%d", sym))
		}
	}
	fmt.Printf("de Bruijn graph B(%d,%d): %d states, %d edges\n", k, n, states, d.NumEdges())

	labels, err := d.EulerPath()
	if err != nil {
		log.Fatal(err)
	}
	sequence := strings.Join(labels, "")
	fmt.Printf("sequence length: %d (want %d)\n", len(sequence), d.NumEdges())

	// Verify the defining property: every n-symbol window (cyclically)
	// appears exactly once.
	cyclic := sequence + sequence[:n-1]
	windows := make(map[string]int)
	for i := 0; i+n <= len(cyclic); i++ {
		windows[cyclic[i:i+n]]++
	}
	want := int(d.NumEdges())
	if len(windows) != want {
		log.Fatalf("distinct windows = %d, want %d", len(windows), want)
	}
	for w, c := range windows {
		if c != 1 {
			log.Fatalf("window %s appears %d times", w, c)
		}
	}
	fmt.Printf("verified: all %d length-%d windows occur exactly once ✓\n", want, n)
	fmt.Printf("first 64 symbols: %s…\n", sequence[:64])
}

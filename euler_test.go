package euler

import (
	"math/rand"
	"testing"
)

func TestFindCircuitTorus(t *testing.T) {
	g := NewTorus(10, 10)
	c, err := FindCircuit(g, WithPartitions(4), WithValidation())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, c.Steps); err != nil {
		t.Fatal(err)
	}
	if c.Report == nil || c.Report.BSP.Supersteps != 3 {
		t.Fatalf("report = %+v", c.Report)
	}
}

func TestFindCircuitAllModes(t *testing.T) {
	g, extra := NewEulerianRMAT(4000, 5, 7)
	if extra <= 0 {
		t.Fatalf("extra%% = %f", extra)
	}
	if err := CheckInput(g); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeCurrent, ModeDedup, ModeProposed} {
		c, err := FindCircuit(g, WithPartitions(8), WithMode(mode), WithValidation())
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if err := Verify(g, c.Steps); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestFindCircuitStream(t *testing.T) {
	g := NewRingOfCliques(6, 5)
	var count int64
	report, err := FindCircuitStream(g, func(Step) error {
		count++
		return nil
	}, WithPartitions(3))
	if err != nil {
		t.Fatal(err)
	}
	if count != g.NumEdges() {
		t.Fatalf("streamed %d steps for %d edges", count, g.NumEdges())
	}
	if report.UserComputeTotal() <= 0 {
		t.Fatal("empty report")
	}
}

func TestFindCircuitSpillDir(t *testing.T) {
	g := NewTorus(8, 8)
	c, err := FindCircuit(g, WithPartitions(2), WithSpillDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, c.Steps); err != nil {
		t.Fatal(err)
	}
}

func TestFindCircuitCostModel(t *testing.T) {
	g := NewTorus(8, 8)
	c, err := FindCircuit(g, WithPartitions(4), WithCommodityCluster())
	if err != nil {
		t.Fatal(err)
	}
	if c.Report.BSP.ModeledTotal <= c.Report.BSP.CriticalPath {
		t.Fatal("cost model added no overhead")
	}
}

func TestFindCircuitExplicitAssignment(t *testing.T) {
	g := NewTorus(6, 6)
	a := PartitionHash(g, 3)
	c, err := FindCircuit(g, WithAssignment(a), WithValidation())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, c.Steps); err != nil {
		t.Fatal(err)
	}
}

func TestFindCircuitRejectsBadInput(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	path := b.Build()
	if _, err := FindCircuit(path); err == nil {
		t.Fatal("non-Eulerian accepted")
	}
	if err := CheckInput(path); err == nil {
		t.Fatal("CheckInput passed a path graph")
	}
}

func TestFindCircuitTinyGraphClampsParts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewRandomEulerian(5, 1, 4, rng)
	// More partitions than vertices must clamp rather than fail.
	c, err := FindCircuit(g, WithPartitions(64))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, c.Steps); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialMatchesDistributedCoverage(t *testing.T) {
	g, _ := NewEulerianRMAT(2000, 5, 3)
	seqSteps, err := FindCircuitSeq(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, seqSteps); err != nil {
		t.Fatal(err)
	}
	dist, err := FindCircuit(g, WithPartitions(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Steps) != len(seqSteps) {
		t.Fatalf("distributed %d steps vs sequential %d", len(dist.Steps), len(seqSteps))
	}
}

func TestFindEulerPathFacade(t *testing.T) {
	b := NewBuilder(5, 5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 1)
	g := b.Build()
	steps, err := FindEulerPath(g, WithPartitions(2))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(steps)) != g.NumEdges() {
		t.Fatalf("path has %d steps for %d edges", len(steps), g.NumEdges())
	}
}

func TestCoveringTourFacade(t *testing.T) {
	// An open grid needs deadheading.
	b := NewBuilder(9, 12)
	for y := int64(0); y < 3; y++ {
		for x := int64(0); x < 3; x++ {
			if x+1 < 3 {
				b.AddEdge(y*3+x, y*3+x+1)
			}
			if y+1 < 3 {
				b.AddEdge(y*3+x, (y+1)*3+x)
			}
		}
	}
	g := b.Build()
	tour, err := CoveringTour(g, WithPartitions(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTour(g, tour); err != nil {
		t.Fatal(err)
	}
	if tour.Revisits == 0 {
		t.Fatal("grid tour should deadhead")
	}
}

func TestPartitionRefineFacade(t *testing.T) {
	g, _ := NewEulerianRMAT(4000, 5, 9)
	a := PartitionHash(g, 4)
	refined, gain := PartitionRefine(g, a)
	if gain <= 0 {
		t.Fatalf("gain = %d", gain)
	}
	c, err := FindCircuit(g, WithAssignment(refined))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, c.Steps); err != nil {
		t.Fatal(err)
	}
}

func TestOptionValidationSharedAcrossEntryPoints(t *testing.T) {
	// Path graph with two odd vertices for FindEulerPath/CoveringTour.
	b := NewBuilder(5, 5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 1)
	g := b.Build()

	// Every facade entry point rejects parts < 1...
	if _, err := FindEulerPath(g, WithPartitions(0)); err == nil {
		t.Fatal("FindEulerPath accepted parts=0")
	}
	if _, err := CoveringTour(g, WithPartitions(-3)); err == nil {
		t.Fatal("CoveringTour accepted parts=-3")
	}
	if _, err := FindCircuit(NewTorus(4, 4), WithPartitions(0)); err == nil {
		t.Fatal("FindCircuit accepted parts=0")
	}

	// ...and clamps parts > |V| instead of failing.
	if _, err := FindEulerPath(g, WithPartitions(64)); err != nil {
		t.Fatalf("FindEulerPath with oversized parts: %v", err)
	}
	tour, err := CoveringTour(g, WithPartitions(64))
	if err != nil {
		t.Fatalf("CoveringTour with oversized parts: %v", err)
	}
	if err := VerifyTour(g, tour); err != nil {
		t.Fatal(err)
	}
}
